//! Wire encodings for frontier exchanges — the communication-reduction
//! layer of §7.1's "compression of the frontier" direction.
//!
//! Both distributed algorithms move frontiers as `u64` payloads: the 1D
//! exchange and the 2D fold send `(target, parent)` pairs, the 2D expand
//! and transpose send plain vertex sets. Per destination those targets are
//! a subset of one contiguous owner range, which makes three encodings
//! natural:
//!
//! * **raw** — the `u64`s as little-endian bytes; the identity encoding.
//! * **varint-delta** — targets sorted ascending, gaps varint-encoded
//!   against the destination's range base. A sparse frontier with `k`
//!   vertices in a range of `R` costs about `k·len(varint(R/k))` bytes
//!   instead of `8k`.
//! * **bitmap** — one bit per vertex of the destination range (`R/8`
//!   bytes), best once the frontier is dense (`k ≳ R/8` for sets).
//!
//! The **adaptive** policy computes the exact cost of each encoding per
//! destination per level and picks the cheapest — which tracks the
//! hump-shaped frontier-size curve of R-MAT BFS levels: varint-delta on
//! the sparse early/late levels, bitmap near the peak. The crossover math
//! is worked out in DESIGN.md.
//!
//! Encodings are exact: decode(encode(x)) == x for every codec, so the
//! BFS parent trees are bit-identical whichever codec runs (tested in
//! `tests/properties.rs`).
//!
//! [`Sieve`] implements the sender-side filter: a per-rank bitmap of
//! every (global vertex, destination) already sent, so re-discovered
//! vertices — which the owner would discard anyway — never reach the
//! wire.

use dmbfs_comm::WireBuf;
use dmbfs_graph::VertexId;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

// The codec *choice* travels with every run's `RunConfig`, so the enum
// lives in the runtime layer; the encodings themselves stay here.
pub use dmbfs_runtime::Codec;

/// Wire tag identifying the concrete encoding inside a [`WireBuf`].
const TAG_RAW: u8 = 0;
const TAG_VARINT: u8 = 1;
const TAG_BITMAP: u8 = 2;

/// Appends `v` as a LEB128 varint (7 bits per byte, MSB = continuation).
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint at `*pos`, advancing it.
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Encoded length of `v` as a varint.
fn varint_len(v: u64) -> u64 {
    (64 - u64::from((v | 1).leading_zeros())).div_ceil(7)
}

/// Estimated wire bytes of each concrete encoding for `k` sorted-unique
/// targets within a destination range of `range_len` vertices, with
/// `parent_bytes` of varint-encoded parent payload riding along (0 for
/// plain sets). Header bytes (tag + count + base + range) are shared and
/// omitted: they don't affect which encoding wins.
fn estimate(k: u64, range_len: u64, parent_bytes: u64) -> [(u8, u64); 3] {
    let raw = 8 * k + parent_bytes;
    // Average-gap estimate: k deltas of roughly range_len/k each.
    let avg_gap = range_len.checked_div(k).unwrap_or(0);
    let varint = k * varint_len(avg_gap) + parent_bytes;
    let bitmap = range_len.div_ceil(8) + parent_bytes;
    [(TAG_RAW, raw), (TAG_VARINT, varint), (TAG_BITMAP, bitmap)]
}

/// Picks the concrete wire tag for `codec` given the frontier shape.
fn pick_tag(codec: Codec, k: u64, range_len: u64, parent_bytes: u64) -> u8 {
    if k == 0 {
        // All encodings are equivalent for an empty payload; raw avoids
        // materializing an all-zero bitmap under a forced Bitmap codec.
        return TAG_RAW;
    }
    match codec {
        Codec::Raw => TAG_RAW,
        Codec::VarintDelta => TAG_VARINT,
        Codec::Bitmap => TAG_BITMAP,
        Codec::Adaptive => {
            estimate(k, range_len, parent_bytes)
                .into_iter()
                .min_by_key(|&(_, cost)| cost)
                .expect("three candidates")
                .0
        }
        Codec::Off => unreachable!("Codec::Off never reaches the encoder"),
    }
}

/// Writes the shared header: tag, element count, range base, range length.
fn push_header(out: &mut Vec<u8>, tag: u8, count: u64, range: &Range<u64>) {
    out.push(tag);
    push_varint(out, count);
    push_varint(out, range.start);
    push_varint(out, range.end - range.start);
}

/// Encodes sorted-unique `(target, parent)` pairs destined for an owner
/// whose vertices span `range`. Targets must be strictly increasing and
/// inside `range`; parents are arbitrary vertex ids.
///
/// Returns the encoded bytes wrapped with the logical size (16 bytes per
/// pair — what the typed `alltoallv` of `(u64, u64)` would have sent).
pub fn encode_pairs(pairs: &[(VertexId, VertexId)], range: Range<u64>, codec: Codec) -> WireBuf {
    debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "pairs sorted");
    let logical = 16 * pairs.len() as u64;
    let k = pairs.len() as u64;
    let range_len = range.end - range.start;
    let parent_bytes: u64 = pairs.iter().map(|&(_, p)| varint_len(p)).sum();
    let tag = pick_tag(codec, k, range_len, parent_bytes);
    let mut out = Vec::new();
    push_header(&mut out, tag, k, &range);
    match tag {
        TAG_RAW => {
            for &(t, _) in pairs {
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
        TAG_VARINT => {
            let mut prev = range.start;
            for &(t, _) in pairs {
                debug_assert!(range.contains(&t));
                push_varint(&mut out, t - prev);
                prev = t;
            }
        }
        TAG_BITMAP => {
            let mut bits = vec![0u8; range_len.div_ceil(8) as usize];
            for &(t, _) in pairs {
                debug_assert!(range.contains(&t));
                let off = (t - range.start) as usize;
                bits[off / 8] |= 1 << (off % 8);
            }
            out.extend_from_slice(&bits);
        }
        _ => unreachable!(),
    }
    // Parents ride along as varints in target order for every encoding
    // (the bitmap enumerates set bits ascending, matching the sort).
    for &(_, p) in pairs {
        push_varint(&mut out, p);
    }
    WireBuf::new(out, logical)
}

/// Decodes a [`encode_pairs`] payload back to sorted `(target, parent)`
/// pairs. Takes the raw wire bytes (`WireBuf::bytes()`) so receivers can
/// decode straight from a loaned payload without owning it.
pub fn decode_pairs(bytes: &[u8]) -> Vec<(VertexId, VertexId)> {
    if bytes.is_empty() {
        return Vec::new();
    }
    let mut pos = 0usize;
    let tag = bytes[pos];
    pos += 1;
    let count = read_varint(bytes, &mut pos) as usize;
    let base = read_varint(bytes, &mut pos);
    let range_len = read_varint(bytes, &mut pos);
    let targets = decode_targets(bytes, &mut pos, tag, count, base, range_len);
    targets
        .into_iter()
        .map(|t| (t, read_varint(bytes, &mut pos)))
        .collect()
}

/// Encodes a sorted-unique vertex set spanning `range` (the 2D expand /
/// transpose payloads). Logical size is 8 bytes per vertex.
pub fn encode_set(vertices: &[VertexId], range: Range<u64>, codec: Codec) -> WireBuf {
    debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]), "set sorted");
    let logical = 8 * vertices.len() as u64;
    let k = vertices.len() as u64;
    let range_len = range.end - range.start;
    let tag = pick_tag(codec, k, range_len, 0);
    let mut out = Vec::new();
    push_header(&mut out, tag, k, &range);
    match tag {
        TAG_RAW => {
            for &v in vertices {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        TAG_VARINT => {
            let mut prev = range.start;
            for &v in vertices {
                debug_assert!(range.contains(&v));
                push_varint(&mut out, v - prev);
                prev = v;
            }
        }
        TAG_BITMAP => {
            let mut bits = vec![0u8; range_len.div_ceil(8) as usize];
            for &v in vertices {
                debug_assert!(range.contains(&v));
                let off = (v - range.start) as usize;
                bits[off / 8] |= 1 << (off % 8);
            }
            out.extend_from_slice(&bits);
        }
        _ => unreachable!(),
    }
    WireBuf::new(out, logical)
}

/// Decodes an [`encode_set`] payload back to the sorted vertex set. Takes
/// the raw wire bytes (`WireBuf::bytes()`) so receivers can decode straight
/// from a loaned payload without owning it.
pub fn decode_set(bytes: &[u8]) -> Vec<VertexId> {
    if bytes.is_empty() {
        return Vec::new();
    }
    let mut pos = 0usize;
    let tag = bytes[pos];
    pos += 1;
    let count = read_varint(bytes, &mut pos) as usize;
    let base = read_varint(bytes, &mut pos);
    let range_len = read_varint(bytes, &mut pos);
    decode_targets(bytes, &mut pos, tag, count, base, range_len)
}

/// Shared target decoder for the three concrete encodings.
fn decode_targets(
    bytes: &[u8],
    pos: &mut usize,
    tag: u8,
    count: usize,
    base: u64,
    range_len: u64,
) -> Vec<VertexId> {
    let mut targets = Vec::with_capacity(count);
    match tag {
        TAG_RAW => {
            for _ in 0..count {
                let mut le = [0u8; 8];
                le.copy_from_slice(&bytes[*pos..*pos + 8]);
                *pos += 8;
                targets.push(u64::from_le_bytes(le));
            }
        }
        TAG_VARINT => {
            let mut prev = base;
            for _ in 0..count {
                prev += read_varint(bytes, pos);
                targets.push(prev);
            }
        }
        TAG_BITMAP => {
            let nbytes = range_len.div_ceil(8) as usize;
            let bits = &bytes[*pos..*pos + nbytes];
            *pos += nbytes;
            for (i, &byte) in bits.iter().enumerate() {
                let mut b = byte;
                while b != 0 {
                    let bit = b.trailing_zeros() as u64;
                    targets.push(base + 8 * i as u64 + bit);
                    b &= b - 1;
                }
            }
            debug_assert_eq!(targets.len(), count);
        }
        other => panic!("corrupt frontier payload: unknown wire tag {other}"),
    }
    targets
}

/// Sender-side duplicate filter: one bit per (vertex, destination) this
/// rank has already emitted. A BFS vertex is discovered exactly once, so
/// anything the bit already covers is a cross-level duplicate the owner
/// would discard — sieving drops it before it costs wire bytes.
///
/// The bit array is atomic so the per-destination encode loop can sieve
/// from pool threads through a shared `&Sieve` (in the 1D exchange each
/// destination's targets fall in a disjoint owner range, so concurrent
/// callers never contend on the same *vertex*, only — harmlessly — on
/// neighbouring bits of a shared word).
#[derive(Debug)]
pub struct Sieve {
    bits: Vec<AtomicU64>,
    hits: AtomicU64,
}

impl Clone for Sieve {
    fn clone(&self) -> Self {
        Self {
            bits: self
                .bits
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
        }
    }
}

impl Sieve {
    /// A sieve covering `n` slots, all clear.
    pub fn new(n: usize) -> Self {
        Self {
            bits: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            hits: AtomicU64::new(0),
        }
    }

    /// Marks slot `i`; returns `true` if it was already set (a duplicate,
    /// counted in [`Sieve::hits`]).
    pub fn test_and_set(&self, i: usize) -> bool {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        let seen = self.bits[word].fetch_or(bit, Ordering::Relaxed) & bit != 0;
        if seen {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        seen
    }

    /// Reads slot `i` without marking it. The overlap pipeline filters
    /// each chunk against the sieve read-only while an exchange is in
    /// flight and defers the marking ([`Sieve::set`]) to the end of the
    /// level, so chunking cannot change which duplicates are dropped.
    pub fn contains(&self, i: usize) -> bool {
        self.bits[i / 64].load(Ordering::Relaxed) & (1u64 << (i % 64)) != 0
    }

    /// Marks slot `i` unconditionally (counting a hit when already set,
    /// like [`Sieve::test_and_set`]) — the deferred-marking half of the
    /// [`Sieve::contains`] protocol.
    pub fn set(&self, i: usize) {
        let _ = self.test_and_set(i);
    }

    /// Counts `n` duplicates dropped outside [`Sieve::test_and_set`] — the
    /// overlap pipeline's read-only [`Sieve::contains`] filter reports its
    /// drops here so `sieve_hits` telemetry matches the sequential path.
    pub fn count_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of duplicates dropped so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// Per-level codec telemetry for one rank (or merged across ranks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelCodecStats {
    /// BFS level this row describes.
    pub level: usize,
    /// Logical frontier-exchange bytes at this level.
    pub logical_bytes: u64,
    /// Encoded bytes that actually crossed the wire.
    pub wire_bytes: u64,
    /// Duplicates dropped by the sender-side sieve.
    pub sieve_hits: u64,
    /// Destinations encoded raw.
    pub chose_raw: u64,
    /// Destinations encoded varint-delta.
    pub chose_varint: u64,
    /// Destinations encoded bitmap.
    pub chose_bitmap: u64,
}

impl LevelCodecStats {
    /// Accounts one encoded buffer at this level. Empty buffers count
    /// toward byte totals (their header still travels) but not toward the
    /// encoding-choice tallies.
    pub fn note(&mut self, buf: &WireBuf) {
        self.logical_bytes += buf.logical_bytes;
        self.wire_bytes += buf.wire_bytes();
        if buf.logical_bytes == 0 {
            return;
        }
        if let Some(&tag) = buf.bytes().first() {
            match tag {
                TAG_RAW => self.chose_raw += 1,
                TAG_VARINT => self.chose_varint += 1,
                TAG_BITMAP => self.chose_bitmap += 1,
                _ => {}
            }
        }
    }

    /// Element-wise sum, keeping `self.level`.
    pub fn merge(&mut self, other: &LevelCodecStats) {
        self.logical_bytes += other.logical_bytes;
        self.wire_bytes += other.wire_bytes;
        self.sieve_hits += other.sieve_hits;
        self.chose_raw += other.chose_raw;
        self.chose_varint += other.chose_varint;
        self.chose_bitmap += other.chose_bitmap;
    }
}

/// Merges per-rank level-stat vectors (ragged lengths allowed) into one
/// per-level vector.
pub fn merge_level_stats(per_rank: &[Vec<LevelCodecStats>]) -> Vec<LevelCodecStats> {
    let depth = per_rank.iter().map(Vec::len).max().unwrap_or(0);
    let mut out: Vec<LevelCodecStats> = (0..depth)
        .map(|level| LevelCodecStats {
            level,
            ..Default::default()
        })
        .collect();
    for rank in per_rank {
        for (level, stats) in rank.iter().enumerate() {
            out[level].merge(stats);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(spec: &[(u64, u64)]) -> Vec<(VertexId, VertexId)> {
        spec.to_vec()
    }

    #[test]
    fn pairs_roundtrip_every_codec() {
        let p = pairs(&[(100, 7), (101, 3), (150, 999), (255, 0)]);
        for codec in [
            Codec::Raw,
            Codec::VarintDelta,
            Codec::Bitmap,
            Codec::Adaptive,
        ] {
            let buf = encode_pairs(&p, 100..256, codec);
            assert_eq!(decode_pairs(buf.bytes()), p, "codec {codec:?}");
        }
    }

    #[test]
    fn set_roundtrip_every_codec() {
        let s = vec![8u64, 9, 64, 65, 127];
        for codec in [
            Codec::Raw,
            Codec::VarintDelta,
            Codec::Bitmap,
            Codec::Adaptive,
        ] {
            let buf = encode_set(&s, 8..128, codec);
            assert_eq!(decode_set(buf.bytes()), s, "codec {codec:?}");
        }
    }

    #[test]
    fn empty_payloads_roundtrip() {
        for codec in [
            Codec::Raw,
            Codec::VarintDelta,
            Codec::Bitmap,
            Codec::Adaptive,
        ] {
            let buf = encode_pairs(&[], 0..1024, codec);
            assert_eq!(buf.logical_bytes, 0);
            assert!(decode_pairs(buf.bytes()).is_empty());
            let buf = encode_set(&[], 0..1024, codec);
            assert!(decode_set(buf.bytes()).is_empty());
        }
    }

    #[test]
    fn varint_beats_raw_on_sparse_and_bitmap_wins_dense() {
        // Sparse: 8 vertices in a 1M range.
        let sparse: Vec<u64> = (0..8u64).map(|i| i * 100_000).collect();
        let v = encode_set(&sparse, 0..1_000_000, Codec::VarintDelta);
        let r = encode_set(&sparse, 0..1_000_000, Codec::Raw);
        let b = encode_set(&sparse, 0..1_000_000, Codec::Bitmap);
        assert!(v.wire_bytes() < r.wire_bytes());
        assert!(v.wire_bytes() < b.wire_bytes());
        let a = encode_set(&sparse, 0..1_000_000, Codec::Adaptive);
        assert_eq!(a.bytes()[0], TAG_VARINT);

        // Dense: every vertex of a 4096 range.
        let dense: Vec<u64> = (0..4096u64).collect();
        let b = encode_set(&dense, 0..4096, Codec::Bitmap);
        let v = encode_set(&dense, 0..4096, Codec::VarintDelta);
        let r = encode_set(&dense, 0..4096, Codec::Raw);
        assert!(b.wire_bytes() < v.wire_bytes());
        assert!(b.wire_bytes() < r.wire_bytes());
        let a = encode_set(&dense, 0..4096, Codec::Adaptive);
        assert_eq!(a.bytes()[0], TAG_BITMAP);
    }

    #[test]
    fn adaptive_never_wildly_exceeds_best() {
        // The adaptive pick uses an average-gap estimate, so it may miss
        // the true optimum on adversarial gap distributions, but it must
        // stay within the estimate error (bounded by the raw encoding).
        let skewed: Vec<u64> = (0..64u64).chain(std::iter::once(999_999)).collect();
        let a = encode_set(&skewed, 0..1_000_000, Codec::Adaptive);
        let r = encode_set(&skewed, 0..1_000_000, Codec::Raw);
        assert!(a.wire_bytes() <= r.wire_bytes());
    }

    #[test]
    fn logical_bytes_match_typed_collective_sizes() {
        let p = pairs(&[(5, 1), (9, 2)]);
        assert_eq!(encode_pairs(&p, 0..16, Codec::Raw).logical_bytes, 32);
        assert_eq!(encode_set(&[3, 4], 0..16, Codec::Raw).logical_bytes, 16);
    }

    #[test]
    fn sieve_counts_duplicates() {
        let s = Sieve::new(100);
        assert!(!s.test_and_set(42));
        assert!(s.test_and_set(42));
        assert!(!s.test_and_set(99));
        assert!(s.test_and_set(42));
        assert_eq!(s.hits(), 2);
    }

    #[test]
    fn sieve_contains_reads_without_marking() {
        let s = Sieve::new(128);
        assert!(!s.contains(64));
        assert!(!s.contains(64), "contains never marks");
        s.set(64);
        assert!(s.contains(64));
        assert_eq!(s.hits(), 0, "first set of a clear slot is not a hit");
        s.set(64);
        assert_eq!(s.hits(), 1, "re-setting counts like test_and_set");
        s.count_hits(3);
        assert_eq!(s.hits(), 4);
    }

    #[test]
    fn sieve_is_exact_under_concurrency() {
        // 4 threads hammer the same 256 slots twice each: every slot is
        // claimed exactly once, and every other attempt counts as a hit.
        let s = Sieve::new(256);
        let claimed = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..256 {
                        for _ in 0..2 {
                            if !s.test_and_set(i) {
                                claimed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(claimed.load(Ordering::Relaxed), 256);
        assert_eq!(s.hits(), 4 * 2 * 256 - 256);
    }

    #[test]
    fn codec_names_parse_back() {
        for codec in Codec::ALL {
            assert_eq!(codec.name().parse::<Codec>().unwrap(), codec);
        }
        assert!("zstd".parse::<Codec>().is_err());
    }

    #[test]
    fn level_stats_note_and_merge() {
        let mut a = LevelCodecStats {
            level: 2,
            ..Default::default()
        };
        a.note(&encode_set(&[1, 2, 3], 0..1024, Codec::VarintDelta));
        assert_eq!(a.logical_bytes, 24);
        assert_eq!(a.chose_varint, 1);
        let b = LevelCodecStats {
            level: 2,
            logical_bytes: 100,
            wire_bytes: 10,
            sieve_hits: 5,
            chose_raw: 1,
            chose_varint: 0,
            chose_bitmap: 2,
        };
        a.merge(&b);
        assert_eq!(a.logical_bytes, 124);
        assert_eq!(a.sieve_hits, 5);
        assert_eq!(a.chose_bitmap, 2);

        let merged = merge_level_stats(&[vec![a], vec![b, b]]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].level, 0);
        assert_eq!(merged[0].logical_bytes, 224);
        assert_eq!(merged[1].logical_bytes, 100);
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert_eq!(buf.len() as u64, varint_len(v), "v = {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
    }
}
