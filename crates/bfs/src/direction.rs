//! Direction-optimizing BFS (top-down / bottom-up hybrid).
//!
//! The successor optimization to this paper's level-synchronous designs
//! (Beamer, Asanović & Patterson, SC'12 — published the year after, and
//! since folded into every serious Graph 500 entry): when the frontier is
//! large, it is cheaper to iterate over *unvisited* vertices and probe
//! whether any neighbor is in the frontier ("bottom-up", exiting at the
//! first hit) than to expand every frontier edge ("top-down"). On
//! low-diameter skewed graphs — exactly the paper's R-MAT instances, where
//! one or two levels contain most vertices — this skips the vast majority
//! of edge examinations.
//!
//! The implementation follows the published heuristic: switch top-down →
//! bottom-up when the frontier's out-edge count exceeds `1/alpha` of the
//! unexplored edges, and back when the frontier shrinks below `n/beta`.
//! [`DirectionOptOutput::edges_examined`] exposes the examined-edge counts
//! so the saving is measurable deterministically (see the
//! `ablation_direction` benchmark) — on a single-core host, wall-clock
//! alone would be noise.

use crate::{BfsOutput, UNREACHED};
use dmbfs_graph::{CsrGraph, VertexId};

/// Tuning knobs of the direction heuristic (defaults from the SC'12 paper).
#[derive(Clone, Copy, Debug)]
pub struct DirectionConfig {
    /// Switch to bottom-up when `frontier out-edges > unexplored edges / alpha`.
    pub alpha: u64,
    /// Switch back to top-down when `|frontier| < n / beta`.
    pub beta: u64,
}

impl Default for DirectionConfig {
    fn default() -> Self {
        Self {
            alpha: 14,
            beta: 24,
        }
    }
}

/// Output of a direction-optimizing run: the BFS tree plus the work
/// accounting that justifies the optimization.
#[derive(Clone, Debug)]
pub struct DirectionOptOutput {
    /// The traversal result (levels agree with any other BFS).
    pub output: BfsOutput,
    /// Edges examined per level, tagged with the direction used.
    pub steps: Vec<LevelStep>,
    /// Total edges examined (compare with `2m` for pure top-down on the
    /// traversed component).
    pub edges_examined: u64,
}

/// One level's direction decision and cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelStep {
    /// Level number (1-based; level 0 is the source).
    pub level: u32,
    /// Direction executed.
    pub direction: Direction,
    /// Frontier size entering the level.
    pub frontier: u64,
    /// Edges examined during the level.
    pub edges_examined: u64,
}

/// Traversal direction of one level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Classic frontier expansion (Algorithm 1's inner loops).
    TopDown,
    /// Unvisited-vertex probing with early exit.
    BottomUp,
}

/// Runs direction-optimizing BFS with default heuristics.
pub fn direction_optimizing_bfs(g: &CsrGraph, source: VertexId) -> DirectionOptOutput {
    direction_optimizing_bfs_with(g, source, &DirectionConfig::default())
}

/// Runs direction-optimizing BFS with explicit heuristics.
pub fn direction_optimizing_bfs_with(
    g: &CsrGraph,
    source: VertexId,
    cfg: &DirectionConfig,
) -> DirectionOptOutput {
    let n = g.num_vertices() as usize;
    assert!((source as usize) < n, "source out of range");
    let mut out = BfsOutput::unreached(source, n);
    out.levels[source as usize] = 0;
    out.parents[source as usize] = source as i64;

    let mut frontier: Vec<VertexId> = vec![source];
    let mut in_frontier = vec![false; n];
    in_frontier[source as usize] = true;

    let total_edges = g.num_edges();
    let mut explored_edges: u64 = g.degree(source) as u64;
    let mut reached: u64 = 1;
    let mut steps: Vec<LevelStep> = Vec::new();
    let mut total_examined: u64 = 0;
    let mut level: i64 = 1;
    let mut bottom_up = false;
    let mut prev_frontier_len = 0usize;
    // Adaptive backoff: each bottom-up round that loses (examines more
    // edges than the top-down estimate it displaced) raises the bar for
    // re-entry exponentially. On the low-diameter graphs the optimization
    // targets, bottom-up wins immediately and the backoff never engages;
    // on adversarial community-chained graphs it caps the damage at one
    // exploratory round per backoff step. Floored at 1 (the hardest legal
    // threshold): repeated losses must never drive the divisor to 0, which
    // would silently disable bottom-up for the rest of the traversal even
    // when a frontier's edges outnumber everything unexplored.
    let mut alpha_eff = cfg.alpha.max(1);

    while !frontier.is_empty() {
        // Heuristic switches (evaluated on the frontier entering the
        // level). As in the SC'12 formulation, the switch to bottom-up
        // additionally requires a *growing* frontier — a shrinking frontier
        // near the end of the traversal never justifies scanning all
        // unvisited vertices (this keeps high-diameter chains top-down).
        let frontier_edges: u64 = frontier.iter().map(|&u| g.degree(u) as u64).sum();
        let unexplored = total_edges.saturating_sub(explored_edges);
        let growing = frontier.len() > prev_frontier_len;
        // A bottom-up round costs at least one probe per unvisited vertex,
        // so it must also beat the top-down cost estimate outright —
        // without this guard, community-structured high-diameter graphs
        // (each community briefly presenting a "large" local frontier)
        // thrash into wasteful whole-graph scans.
        let unvisited = n as u64 - reached;
        if !bottom_up
            && cfg.alpha > 0
            && growing
            && frontier_edges > unexplored / alpha_eff
            && unvisited < frontier_edges
        {
            bottom_up = true;
        } else if bottom_up && cfg.beta > 0 && (frontier.len() as u64) * cfg.beta < n as u64 {
            bottom_up = false;
        }
        prev_frontier_len = frontier.len();

        let mut examined: u64 = 0;
        let mut next: Vec<VertexId> = Vec::new();
        if bottom_up {
            // Bottom-up: every unvisited vertex probes its neighbors for a
            // frontier member, exiting at the first hit.
            for v in 0..n as u64 {
                if out.levels[v as usize] != UNREACHED {
                    continue;
                }
                for &u in g.neighbors(v) {
                    examined += 1;
                    if in_frontier[u as usize] {
                        out.levels[v as usize] = level;
                        out.parents[v as usize] = u as i64;
                        next.push(v);
                        break;
                    }
                }
            }
        } else {
            // Top-down: Algorithm 1.
            for &u in &frontier {
                for &v in g.neighbors(u) {
                    examined += 1;
                    if out.levels[v as usize] == UNREACHED {
                        out.levels[v as usize] = level;
                        out.parents[v as usize] = u as i64;
                        next.push(v);
                    }
                }
            }
        }

        steps.push(LevelStep {
            level: level as u32,
            direction: if bottom_up {
                Direction::BottomUp
            } else {
                Direction::TopDown
            },
            frontier: frontier.len() as u64,
            edges_examined: examined,
        });
        total_examined += examined;
        explored_edges += next.iter().map(|&v| g.degree(v) as u64).sum::<u64>();
        reached += next.len() as u64;
        if bottom_up && examined > frontier_edges {
            // The round lost; shrink alpha so the switch condition
            // (m_f > m_unexplored / alpha) becomes much harder to satisfy.
            // The floor keeps `frontier_edges > unexplored` as the re-entry
            // condition of last resort instead of reaching alpha_eff == 0.
            alpha_eff = (alpha_eff / 8).max(1);
            bottom_up = false;
        }

        for &u in &frontier {
            in_frontier[u as usize] = false;
        }
        for &v in &next {
            in_frontier[v as usize] = true;
        }
        frontier = next;
        level += 1;
    }

    DirectionOptOutput {
        output: out,
        steps,
        edges_examined: total_examined,
    }
}

/// Edges a pure top-down traversal examines: every stored adjacency of
/// every reached vertex (the baseline for the saving).
pub fn top_down_examinations(g: &CsrGraph, out: &BfsOutput) -> u64 {
    crate::serial::traversed_adjacencies(g, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use crate::validate::validate_bfs;
    use dmbfs_graph::gen::{grid2d, path, rmat, RmatConfig};
    use dmbfs_graph::{CsrGraph, EdgeList};

    fn rmat_graph(scale: u32, seed: u64) -> CsrGraph {
        let mut el = rmat(&RmatConfig::graph500(scale, seed));
        el.canonicalize_undirected();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn matches_serial_on_rmat() {
        let g = rmat_graph(10, 3);
        let expected = serial_bfs(&g, 0);
        let got = direction_optimizing_bfs(&g, 0);
        assert_eq!(got.output.levels, expected.levels);
        validate_bfs(&g, 0, &got.output.parents, got.output.levels()).unwrap();
    }

    #[test]
    fn matches_serial_on_structured_graphs() {
        for (name, el) in [("path", path(50)), ("grid", grid2d(9, 9))] {
            let g = CsrGraph::from_edge_list(&el);
            let expected = serial_bfs(&g, 0);
            let got = direction_optimizing_bfs(&g, 0);
            assert_eq!(got.output.levels, expected.levels, "{name}");
        }
    }

    #[test]
    fn uses_bottom_up_on_skewed_low_diameter_graphs() {
        let g = rmat_graph(11, 7);
        let got = direction_optimizing_bfs(&g, 0);
        assert!(
            got.steps.iter().any(|s| s.direction == Direction::BottomUp),
            "R-MAT peak levels should trigger bottom-up: {:?}",
            got.steps
        );
    }

    #[test]
    fn saves_edge_examinations_on_rmat() {
        let g = rmat_graph(12, 9);
        let got = direction_optimizing_bfs(&g, 0);
        let baseline = top_down_examinations(&g, &got.output);
        assert!(
            got.edges_examined * 2 < baseline,
            "direction optimization should at least halve examinations: {} vs {}",
            got.edges_examined,
            baseline
        );
    }

    #[test]
    fn stays_top_down_on_high_diameter_graphs() {
        // A path never reaches the bottom-up threshold.
        let g = CsrGraph::from_edge_list(&path(200));
        let got = direction_optimizing_bfs(&g, 0);
        assert!(got.steps.iter().all(|s| s.direction == Direction::TopDown));
    }

    #[test]
    fn forced_bottom_up_still_correct() {
        // alpha = 1 forces bottom-up almost immediately; beta = 0 disables
        // switching back.
        let g = rmat_graph(9, 5);
        let cfg = DirectionConfig { alpha: 1, beta: 0 };
        let got = direction_optimizing_bfs_with(&g, 0, &cfg);
        assert_eq!(got.output.levels, serial_bfs(&g, 0).levels);
    }

    #[test]
    fn backoff_bounds_overhead_on_community_chains() {
        // A chained-community graph defeats the a-priori heuristic (most
        // frontier edges point backward); the adaptive backoff must cap
        // the extra work at a small factor.
        let mut el = dmbfs_graph::gen::webcrawl(&dmbfs_graph::gen::WebCrawlConfig {
            num_communities: 20,
            community_size: 80,
            intra_degree: 10,
            bridges: 2,
            seed: 3,
        });
        el.canonicalize_undirected();
        let g = CsrGraph::from_edge_list(&el);
        let run = direction_optimizing_bfs(&g, 0);
        let baseline = top_down_examinations(&g, &run.output);
        assert!(
            run.edges_examined < baseline + baseline / 3,
            "overhead must stay bounded: {} vs baseline {}",
            run.edges_examined,
            baseline
        );
        assert_eq!(run.output.levels, serial_bfs(&g, 0).levels);
    }

    #[test]
    fn backoff_floors_alpha_and_allows_reentry() {
        // Regression for the `alpha_eff /= 8` underflow: with a huge alpha
        // every community boundary fires a losing bottom-up round and a
        // backoff. Enough communities drive an unfloored divisor through
        // u64::MAX / 8^22 to 0, which would make the switch condition
        // `frontier_edges > unexplored / 0` unsatisfiable (panic or, with
        // a max(1) bandage at the use site, a silently frozen threshold).
        // With the floor the divisor bottoms out at 1 and the traversal
        // both stays correct and keeps re-entering bottom-up.
        let mut el = dmbfs_graph::gen::webcrawl(&dmbfs_graph::gen::WebCrawlConfig {
            num_communities: 30,
            community_size: 60,
            intra_degree: 12,
            bridges: 2,
            seed: 8,
        });
        el.canonicalize_undirected();
        let g = CsrGraph::from_edge_list(&el);
        let cfg = DirectionConfig {
            alpha: u64::MAX,
            beta: 24,
        };
        let run = direction_optimizing_bfs_with(&g, 0, &cfg);
        assert_eq!(run.output.levels, serial_bfs(&g, 0).levels);
        let bottom_up_rounds = run
            .steps
            .iter()
            .filter(|s| s.direction == Direction::BottomUp)
            .count();
        assert!(
            bottom_up_rounds >= 2,
            "bottom-up must re-enter after backoffs, got {bottom_up_rounds} rounds: {:?}",
            run.steps
        );
    }

    #[test]
    fn disconnected_graph_terminates() {
        let el = EdgeList::new(6, vec![(0, 1), (1, 0), (4, 5), (5, 4)]);
        let g = CsrGraph::from_edge_list(&el);
        let got = direction_optimizing_bfs(&g, 0);
        assert_eq!(got.output.num_reached(), 2);
    }

    #[test]
    fn step_accounting_sums_to_total() {
        let g = rmat_graph(9, 11);
        let got = direction_optimizing_bfs(&g, 2);
        let sum: u64 = got.steps.iter().map(|s| s.edges_examined).sum();
        assert_eq!(sum, got.edges_examined);
    }
}
