//! Distributed PageRank on the 2D checkerboard substrate.
//!
//! §1 motivates the whole line of work with "identifying and ranking
//! important entities"; PageRank is that kernel. It is also the
//! *dense-vector* counterpart of the 2D BFS: the same `pr × pc` grid and
//! submatrix blocks, but the expand phase gathers a dense chunk and the
//! fold phase is a `reduce_scatter` (sum) instead of a sparse merge —
//! exactly the classical parallel SpMV structure (the paper's \[22\]) that
//! the 2D BFS generalizes away from. Having both on one substrate makes
//! the sparse-vs-dense contrast §3.2 draws concrete.
//!
//! Iteration: `x' = (1 − d)/n + d · (Aᵀ x̂ + dangling mass / n)` with
//! `x̂[v] = x[v] / outdeg(v)`.

use crate::distribute::extract_2d;
use dmbfs_comm::CommStats;
use dmbfs_graph::{CsrGraph, Grid2D, VertexId};
use dmbfs_matrix::{spmv::spmv_dense, Dcsc};
use dmbfs_runtime::{run_ranks, scatter_block, Codec, FaultPlan, RunConfig};
use dmbfs_trace::{RankTrace, SpanKind, NO_LEVEL};
use std::time::Duration;

/// Configuration for [`distributed_pagerank`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (0.85 is the standard choice).
    pub damping: f64,
    /// Stop when the L1 change between iterations drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: u32,
    /// Processor grid.
    pub grid: Grid2D,
    /// Threads per rank (the harness builds a rank pool when > 1; the
    /// dense kernels currently stay on the rank main thread).
    pub threads_per_rank: usize,
    /// Record per-rank span traces. Strictly an observer: the computed
    /// scores are bit-identical either way.
    pub trace: bool,
    /// Attach the collective-matching verifier (see `docs/verification.md`).
    /// Strictly an observer: the computed scores are bit-identical either
    /// way.
    pub verify: bool,
    /// Deterministic fault-injection schedule (see `docs/fault-injection.md`).
    /// Empty by default.
    pub faults: FaultPlan,
    /// Overrides the verifier's watchdog timeout (`None` = env default).
    pub verify_timeout: Option<Duration>,
}

impl PageRankConfig {
    /// Standard parameters on the given grid.
    pub fn new(grid: Grid2D) -> Self {
        Self {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
            grid,
            threads_per_rank: 1,
            trace: false,
            verify: false,
            faults: FaultPlan::none(),
            verify_timeout: None,
        }
    }

    /// Replaces the threads-per-rank count.
    pub fn with_threads(mut self, threads_per_rank: usize) -> Self {
        assert!(threads_per_rank >= 1);
        self.threads_per_rank = threads_per_rank;
        self
    }

    /// Enables or disables span tracing.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Enables or disables the collective-matching verifier.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Replaces the fault-injection schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the verifier's watchdog timeout.
    pub fn with_verify_timeout(mut self, timeout: Duration) -> Self {
        self.verify_timeout = Some(timeout);
        self
    }

    /// The runtime-layer view of this configuration. PageRank moves dense
    /// float payloads, so the frontier codec/sieve do not apply.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            ranks: self.grid.size(),
            threads_per_rank: self.threads_per_rank,
            codec: Codec::Off,
            sieve: false,
            trace: self.trace,
            verify: self.verify,
            faults: self.faults,
            verify_timeout: self.verify_timeout,
            overlap: None,
            direction: dmbfs_runtime::DirectionMode::TopDown,
            schedule_capture: false,
        }
    }
}

/// Result of a PageRank run.
#[derive(Clone, Debug)]
pub struct PageRankOutput {
    /// Scores, summing to 1.
    pub scores: Vec<f64>,
    /// Iterations executed.
    pub iterations: u32,
}

impl PageRankOutput {
    /// Vertices sorted by descending score.
    pub fn ranking(&self) -> Vec<VertexId> {
        let mut order: Vec<VertexId> = (0..self.scores.len() as u64).collect();
        order.sort_by(|&a, &b| {
            self.scores[b as usize]
                .total_cmp(&self.scores[a as usize])
                .then(a.cmp(&b))
        });
        order
    }
}

/// Serial reference power iteration.
pub fn serial_pagerank(
    g: &CsrGraph,
    damping: f64,
    tolerance: f64,
    max_iter: u32,
) -> PageRankOutput {
    let n = g.num_vertices() as usize;
    assert!(n > 0);
    let mut x = vec![1.0 / n as f64; n];
    let mut iterations = 0;
    while iterations < max_iter {
        iterations += 1;
        let mut next = vec![0.0; n];
        let mut dangling = 0.0;
        for u in 0..n as u64 {
            let deg = g.degree(u);
            if deg == 0 {
                dangling += x[u as usize];
                continue;
            }
            let share = x[u as usize] / deg as f64;
            for &v in g.neighbors(u) {
                next[v as usize] += share;
            }
        }
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        let mut delta = 0.0;
        for (v, slot) in next.iter_mut().enumerate() {
            *slot = base + damping * *slot;
            delta += (*slot - x[v]).abs();
        }
        x = next;
        if delta < tolerance {
            break;
        }
    }
    PageRankOutput {
        scores: x,
        iterations,
    }
}

/// A PageRank run with the harness's full measurement surface.
#[derive(Clone, Debug)]
pub struct PageRankRun {
    /// Assembled global result.
    pub output: PageRankOutput,
    /// Per-rank communication event streams (row-major grid order),
    /// including the row/column communicator events.
    pub per_rank_stats: Vec<CommStats>,
    /// Per-rank span traces; empty spans unless [`PageRankConfig::trace`]
    /// was set.
    pub per_rank_trace: Vec<RankTrace>,
    /// Wall seconds of the timed region (max over ranks, excluding graph
    /// distribution and communicator setup).
    pub seconds: f64,
}

/// Distributed PageRank over the 2D grid (see module docs). Produces
/// scores identical (to fp accumulation order) with [`serial_pagerank`].
pub fn distributed_pagerank(g: &CsrGraph, cfg: &PageRankConfig) -> PageRankOutput {
    distributed_pagerank_run(g, cfg).output
}

/// [`distributed_pagerank`] with per-rank stats, traces, and timing.
pub fn distributed_pagerank_run(g: &CsrGraph, cfg: &PageRankConfig) -> PageRankRun {
    let grid = cfg.grid;
    let n = g.num_vertices();
    assert!(n > 0);

    // Out-degrees are global knowledge (ingest-phase metadata).
    let degrees: Vec<u32> = (0..n).map(|v| g.degree(v) as u32).collect();
    let degrees = &degrees;

    let run = run_ranks(&cfg.run_config(), |ctx| {
        let comm = ctx.comm();
        let (i, j) = grid.coords_of(ctx.rank());
        let block = extract_2d(g, grid, i, j);
        let matrix = Dcsc::from_triples(block.nrows(), block.ncols(), &block.triples);
        let row_comm = comm.split(i as u64, j as u64);
        let col_comm = comm.split((grid.rows() + j) as u64, i as u64);

        // Owned dense chunk: this rank's share of the vector under the 2D
        // vector distribution.
        let vrange = block.map.vector_range(i, j);
        let nloc = (vrange.end - vrange.start) as usize;
        let mut x: Vec<f64> = vec![1.0 / n as f64; nloc];
        let mut iterations = 0u32;

        ctx.reset_accounting(); // exclude setup from stats and trace
        ctx.timed(0, || loop {
            comm.trace_enter_level(iterations as i64);
            let iter_t = comm.trace_start();
            iterations += 1;
            // Scale by out-degree and account dangling mass.
            let mut dangling = 0.0;
            let scaled: Vec<f64> = x
                .iter()
                .enumerate()
                .map(|(k, &xv)| {
                    let deg = degrees[(vrange.start + k as u64) as usize];
                    if deg == 0 {
                        dangling += xv;
                        0.0
                    } else {
                        xv / deg as f64
                    }
                })
                .collect();
            let dangling = comm.allreduce(dangling, |a, b| a + b);

            // Expand: assemble the dense input chunk for this block's
            // columns — the same transpose + column-allgather schedule as
            // the 2D BFS. On a square grid the pieces concatenate in
            // order; on rectangular grids elements are routed with their
            // global indices and scattered into place.
            let input: Vec<f64> = if grid.is_square() {
                let transposed = comm.sendrecv(grid.rank_of(j, i), scaled);
                let gathered = col_comm.allgatherv(transposed);
                let flat: Vec<f64> = gathered.into_iter().flatten().collect();
                debug_assert_eq!(flat.len() as u64, block.ncols());
                flat
            } else {
                let mut bufs: Vec<Vec<(u64, f64)>> = vec![Vec::new(); comm.size()];
                for (k, &v) in scaled.iter().enumerate() {
                    let gidx = vrange.start + k as u64;
                    let jstar = block.map.col_owner(gidx);
                    bufs[grid.rank_of(j % grid.rows(), jstar)].push((gidx, v));
                }
                let routed: Vec<(u64, f64)> = comm.alltoallv(bufs).into_iter().flatten().collect();
                let gathered = col_comm.allgatherv(routed);
                let mut dense = vec![0.0; block.ncols() as usize];
                for (gidx, v) in gathered.into_iter().flatten() {
                    dense[(gidx - block.col_range.start) as usize] = v;
                }
                dense
            };

            // Local dense SpMV over the block.
            let partial = spmv_dense(&matrix, &input);

            // Fold: sum the row's partials and scatter each owner its
            // share — reduce_scatter over the row communicator.
            let mut per_owner: Vec<Vec<f64>> = Vec::with_capacity(grid.cols());
            for jj in 0..grid.cols() {
                let r = block.map.vector_range(i, jj);
                let lo = (r.start - block.row_range.start) as usize;
                let hi = (r.end - block.row_range.start) as usize;
                per_owner.push(partial[lo..hi].to_vec());
            }
            let mine = row_comm.reduce_scatter(per_owner, |a, b| {
                a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
            });
            debug_assert_eq!(mine.len(), nloc);

            // Damping + dangling redistribution + convergence test.
            let base = (1.0 - cfg.damping) / n as f64 + cfg.damping * dangling / n as f64;
            let mut local_delta = 0.0;
            let next: Vec<f64> = mine
                .into_iter()
                .enumerate()
                .map(|(k, s)| {
                    let v = base + cfg.damping * s;
                    local_delta += (v - x[k]).abs();
                    v
                })
                .collect();
            x = next;
            let delta = comm.allreduce(local_delta, |a, b| a + b);
            comm.trace_span(SpanKind::Level, iter_t, iterations as u64);
            if delta < cfg.tolerance || iterations >= cfg.max_iterations {
                comm.trace_enter_level(NO_LEVEL);
                break;
            }
        });

        // World events (transpose, allreduce) plus the row/column
        // communicator events (fold, expand) in one stream per rank.
        ctx.merge_stats(row_comm.take_stats());
        ctx.merge_stats(col_comm.take_stats());
        (vrange.start, x, iterations)
    });

    let mut scores = vec![0.0; n as usize];
    let mut iterations = 0;
    for (start, rank_scores, rank_iters) in run.per_rank {
        scatter_block(&mut scores, start, &rank_scores);
        iterations = iterations.max(rank_iters);
    }
    PageRankRun {
        output: PageRankOutput { scores, iterations },
        per_rank_stats: run.per_rank_stats,
        per_rank_trace: run.per_rank_trace,
        seconds: run.seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbfs_graph::gen::{rmat, RmatConfig};
    use dmbfs_graph::{CsrGraph, EdgeList};

    fn rmat_graph(scale: u32, seed: u64) -> CsrGraph {
        let mut el = rmat(&RmatConfig::graph500(scale, seed));
        el.canonicalize_undirected();
        CsrGraph::from_edge_list(&el)
    }

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn distributed_matches_serial() {
        let g = rmat_graph(8, 3);
        let serial = serial_pagerank(&g, 0.85, 1e-12, 100);
        for grid in [
            Grid2D::new(1, 1),
            Grid2D::new(2, 2),
            Grid2D::new(3, 3),
            Grid2D::new(2, 3),
        ] {
            let cfg = PageRankConfig {
                tolerance: 1e-12,
                max_iterations: 100,
                ..PageRankConfig::new(grid)
            };
            let got = distributed_pagerank(&g, &cfg);
            assert!(
                close(&got.scores, &serial.scores, 1e-9),
                "grid {grid:?} diverged"
            );
        }
    }

    #[test]
    fn scores_sum_to_one() {
        let g = rmat_graph(8, 5);
        let out = distributed_pagerank(&g, &PageRankConfig::new(Grid2D::new(2, 2)));
        let total: f64 = out.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-8, "sum = {total}");
    }

    #[test]
    fn hub_outranks_leaf_on_a_star() {
        // Star: center 0 linked to 1..=5.
        let mut edges = Vec::new();
        for v in 1..=5u64 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        let g = CsrGraph::from_edge_list(&EdgeList::new(6, edges));
        let out = distributed_pagerank(&g, &PageRankConfig::new(Grid2D::new(2, 2)));
        assert_eq!(out.ranking()[0], 0);
        assert!(out.scores[0] > 3.0 * out.scores[1]);
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // Vertex 2 has no out-edges (directed input, no symmetrization).
        let g = CsrGraph::from_edge_list(&EdgeList::new(3, vec![(0, 1), (1, 2)]));
        let serial = serial_pagerank(&g, 0.85, 1e-12, 100);
        let got = distributed_pagerank(
            &g,
            &PageRankConfig {
                tolerance: 1e-12,
                max_iterations: 100,
                ..PageRankConfig::new(Grid2D::new(2, 2))
            },
        );
        assert!(close(&got.scores, &serial.scores, 1e-9));
        let total: f64 = got.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = rmat_graph(7, 7);
        let cfg = PageRankConfig {
            tolerance: 0.0,
            max_iterations: 5,
            ..PageRankConfig::new(Grid2D::new(2, 2))
        };
        let out = distributed_pagerank(&g, &cfg);
        assert_eq!(out.iterations, 5);
    }
}
