//! # dmbfs-bfs — the paper's BFS algorithms
//!
//! Implementations of every traversal variant evaluated in Buluç & Madduri
//! (SC'11):
//!
//! * [`serial`] — Algorithm 1, the two-stack serial level-synchronous BFS;
//!   the correctness oracle for everything else.
//! * [`shared`] — the single-node multithreaded BFS of §4.2: thread-local
//!   next-frontier stacks merged per level, with both CAS-guarded and
//!   "benign race" discovery modes (§4.2's atomics-avoidance optimization,
//!   also §6's single-node comparison subject).
//! * [`one_d`] — Algorithm 2: 1D vertex-partitioned distributed BFS with
//!   owner-aggregated edge exchange (`Alltoallv`), flat and hybrid.
//! * [`two_d`] — Algorithm 3: 2D checkerboard-partitioned BFS as SpMSV over
//!   the (select, max) semiring, with TransposeVector + expand
//!   (`Allgatherv` over processor columns) + fold (`Alltoallv` over
//!   processor rows), flat and hybrid, under either the paper's 2D vector
//!   distribution or the inferior diagonal-only distribution of §4.3.
//! * [`baseline`] — reimplementations of the comparators of §6: the
//!   Graph 500 reference-MPI-like 1D code and a PBGL-like distributed-queue
//!   BFS.
//! * [`validate`] — the Graph 500 result validator (parent/level checks).
//! * [`teps`] — Graph 500 benchmark protocol: multi-source runs, traversed
//!   edge counting, TEPS statistics.
//! * [`distribute`] — graph partitioning helpers shared by the distributed
//!   algorithms (1D adjacency slices, 2D submatrix extraction).
//!
//! Extensions beyond the paper's evaluation (each anchored to a claim or
//! future-work item the paper makes — see DESIGN.md):
//!
//! * [`direction`] — Beamer-style direction-optimizing BFS.
//! * [`multi_source`] — bit-parallel MS-BFS (64 sources per sweep).
//! * [`apps`] — distributed connected components and diameter estimation.
//! * [`sssp`] — Bellman–Ford and Δ-stepping shortest paths (+ Dijkstra
//!   oracle and tree validator).
//! * [`pagerank`] — 2D-grid PageRank (dense SpMV + `reduce_scatter`).
//! * [`pregel`] — a vertex-centric framework with aggregators, carrying
//!   BFS/components/PageRank vertex programs.
//! * [`centrality`] — Brandes betweenness (serial, parallel, sampled).

#![warn(missing_docs)]

pub mod apps;
pub mod baseline;
pub mod centrality;
pub mod direction;
pub mod distribute;
pub mod frontier_codec;
pub mod multi_source;
pub mod one_d;
pub mod pagerank;
pub mod pregel;
pub mod serial;
pub mod shared;
pub mod sssp;
pub mod teps;
pub mod two_d;
pub mod validate;

use dmbfs_graph::VertexId;

/// Sentinel for "not reached" in parent and level arrays.
pub const UNREACHED: i64 = -1;

/// The result of a BFS from one source: a breadth-first spanning tree
/// (parents) and the level (distance) of every vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsOutput {
    /// Source vertex.
    pub source: VertexId,
    /// `parents[v]` is the BFS-tree predecessor of `v`, `source` for the
    /// source itself, [`UNREACHED`] for unreachable vertices.
    pub parents: Vec<i64>,
    /// `levels[v]` is the distance from the source, [`UNREACHED`] if
    /// unreachable.
    pub levels: Vec<i64>,
}

impl BfsOutput {
    /// Creates an all-unreached output for `n` vertices.
    pub fn unreached(source: VertexId, n: usize) -> Self {
        Self {
            source,
            parents: vec![UNREACHED; n],
            levels: vec![UNREACHED; n],
        }
    }

    /// The level array.
    pub fn levels(&self) -> &[i64] {
        &self.levels
    }

    /// Number of reached vertices (including the source).
    pub fn num_reached(&self) -> u64 {
        self.levels.iter().filter(|&&l| l != UNREACHED).count() as u64
    }

    /// Depth of the BFS tree (maximum level).
    pub fn depth(&self) -> i64 {
        self.levels.iter().copied().max().unwrap_or(0)
    }
}
