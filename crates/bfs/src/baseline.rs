//! Reimplemented comparator codes from §6.
//!
//! The paper benchmarks against two external implementations. Neither can
//! be linked here (PBGL is C++/Boost; the Graph 500 reference is C/MPI), so
//! both are re-implemented *with their documented design decisions* on the
//! same runtime, making the comparisons of Table 2 and §6 apples-to-apples:
//!
//! * [`reference_mpi_bfs`] — the Graph 500 v2.1 "simple" non-replicated
//!   reference code: 1D partitioning by `v mod p` (no load-balancing vertex
//!   shuffle), per-destination outgoing buffers flushed as point-to-point
//!   messages of a fixed coalescing size rather than one bulk `Alltoallv`,
//!   and a bitmap visited filter. The paper's Flat 1D code beats it 2.72×
//!   to 4.13× at 512–2048 cores.
//! * [`pbgl_like_bfs`] — the Parallel Boost Graph Library's BFS: a
//!   distributed queue with ghost-cell semantics where every traversed
//!   edge immediately generates a message to the owner, small coalescing
//!   buffers, and a generic associative property map (here a `HashMap`,
//!   mirroring PBGL's distributed property-map abstraction penalty) for
//!   distances. Table 2 shows our Flat 2D up to 16× faster.
//!
//! Both baselines run on the shared execution harness
//! ([`dmbfs_runtime::run_ranks`]), so their runs carry the same per-rank
//! stats and span traces as the optimized drivers. Their *compute* stays
//! single-threaded regardless of [`RunConfig::threads_per_rank`]: the
//! comparator codes being reimplemented are not multithreaded, and
//! threading them would misrepresent what Table 2 compares.

use crate::{BfsOutput, UNREACHED};
use dmbfs_comm::{Comm, CommStats};
use dmbfs_graph::{CsrGraph, VertexId};
use dmbfs_runtime::{run_ranks, DistRun, RunConfig};
use dmbfs_trace::{RankTrace, SpanKind, NO_LEVEL};
use std::collections::HashMap;

/// Coalescing buffer size (messages) used by both baselines; PBGL and the
/// reference code flush partner buffers at a fixed element count instead of
/// aggregating whole levels.
const COALESCE: usize = 256;

/// Result of a baseline run (same shape as the optimized runners).
#[derive(Clone, Debug)]
pub struct BaselineRun {
    /// Assembled global result.
    pub output: BfsOutput,
    /// Wall seconds of the timed region (max over ranks).
    pub seconds: f64,
    /// Per-rank communication event streams (index = rank).
    pub per_rank_stats: Vec<CommStats>,
    /// Per-rank span traces (index = rank); empty spans unless
    /// [`RunConfig::trace`] was set.
    pub per_rank_trace: Vec<RankTrace>,
}

/// Graph 500 reference-MPI-like 1D BFS on `p` ranks. See module docs.
pub fn reference_mpi_bfs(g: &CsrGraph, source: VertexId, p: usize) -> BaselineRun {
    reference_mpi_bfs_with(g, source, &RunConfig::flat(p))
}

/// [`reference_mpi_bfs`] under a full [`RunConfig`] (tracing etc.; the
/// codec/sieve/threads fields are ignored — see module docs).
pub fn reference_mpi_bfs_with(g: &CsrGraph, source: VertexId, cfg: &RunConfig) -> BaselineRun {
    assert!(source < g.num_vertices());
    let n = g.num_vertices();
    let p = cfg.ranks;

    let run = run_ranks(cfg, |ctx| {
        let comm = ctx.comm();
        let rank = ctx.rank();
        // Modulo ownership: vertex v lives on rank v % p (the reference
        // code's layout; no degree-balancing shuffle).
        let owned: Vec<VertexId> = (0..n).filter(|v| (*v as usize) % p == rank).collect();
        let index_of: HashMap<VertexId, usize> =
            owned.iter().enumerate().map(|(k, &v)| (v, k)).collect();

        ctx.timed(source, || {
            let mut levels = vec![UNREACHED; owned.len()];
            let mut parents = vec![UNREACHED; owned.len()];
            let mut frontier: Vec<VertexId> = Vec::new();
            if (source as usize) % p == rank {
                let k = index_of[&source];
                levels[k] = 0;
                parents[k] = source as i64;
                frontier.push(source);
            }

            let mut level: i64 = 1;
            loop {
                comm.trace_enter_level(level - 1);
                let level_t = comm.trace_start();
                // Enumerate adjacencies into per-destination queues, then
                // drain them in fixed-size coalescing rounds (the
                // reference's isend-coalescing translated to the
                // bulk-synchronous runtime: many small exchanges instead of
                // one large aggregated one, with a termination handshake
                // per round).
                let mut bufs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
                let mut incoming: Vec<(u64, u64)> = Vec::new();
                for &u in &frontier {
                    for &v in g.neighbors(u) {
                        bufs[(v as usize) % p].push((v, u));
                    }
                }
                drain_in_rounds(comm, &mut bufs, &mut incoming);
                // Claim received vertices.
                let mut next = Vec::new();
                for (v, parent) in incoming.drain(..) {
                    let k = index_of[&v];
                    if levels[k] == UNREACHED {
                        levels[k] = level;
                        parents[k] = parent as i64;
                        next.push(v);
                    }
                }
                let total = comm.allreduce(next.len() as u64, |a, b| a + b);
                comm.trace_span(SpanKind::Level, level_t, frontier.len() as u64);
                if total == 0 {
                    comm.trace_enter_level(NO_LEVEL);
                    break;
                }
                frontier = next;
                level += 1;
            }

            owned
                .iter()
                .enumerate()
                .map(|(k, &v)| (v, levels[k], parents[k]))
                .collect::<Vec<_>>()
        })
    });

    assemble(source, n, run)
}

/// Drains per-destination queues in collective rounds of at most
/// [`COALESCE`] entries per destination, until every rank is empty. Each
/// round costs a full latency-bound exchange — the small-message behavior
/// that makes these baselines slow relative to whole-level aggregation.
fn drain_in_rounds(comm: &Comm, bufs: &mut [Vec<(u64, u64)>], incoming: &mut Vec<(u64, u64)>) {
    loop {
        let pending: u64 = comm.allreduce(bufs.iter().map(|b| b.len() as u64).sum(), |a, b| a + b);
        if pending == 0 {
            return;
        }
        let send: Vec<Vec<(u64, u64)>> = bufs
            .iter_mut()
            .map(|b| {
                let k = b.len().min(COALESCE);
                b.drain(..k).collect()
            })
            .collect();
        for chunk in comm.alltoallv(send) {
            incoming.extend(chunk);
        }
    }
}

/// PBGL-like distributed-queue BFS on `p` ranks. See module docs.
pub fn pbgl_like_bfs(g: &CsrGraph, source: VertexId, p: usize) -> BaselineRun {
    pbgl_like_bfs_with(g, source, &RunConfig::flat(p))
}

/// [`pbgl_like_bfs`] under a full [`RunConfig`] (tracing etc.; the
/// codec/sieve/threads fields are ignored — see module docs).
pub fn pbgl_like_bfs_with(g: &CsrGraph, source: VertexId, cfg: &RunConfig) -> BaselineRun {
    assert!(source < g.num_vertices());
    let n = g.num_vertices();
    let p = cfg.ranks;

    let run = run_ranks(cfg, |ctx| {
        let comm = ctx.comm();
        let rank = ctx.rank();
        let block = n.div_ceil(p as u64).max(1);
        let owner = |v: VertexId| ((v / block) as usize).min(p - 1);
        let owned: Vec<VertexId> = (0..n).filter(|&v| owner(v) == rank).collect();

        ctx.timed(source, || {
            // PBGL's generic distributed property maps: associative lookups
            // per vertex rather than dense arrays.
            let mut distance: HashMap<VertexId, i64> = HashMap::new();
            let mut parent: HashMap<VertexId, i64> = HashMap::new();
            let mut queue: Vec<VertexId> = Vec::new();
            if owner(source) == rank {
                distance.insert(source, 0);
                parent.insert(source, source as i64);
                queue.push(source);
            }

            let mut level: i64 = 1;
            loop {
                comm.trace_enter_level(level - 1);
                let level_t = comm.trace_start();
                let mut bufs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
                let mut incoming: Vec<(u64, u64)> = Vec::new();
                for &u in &queue {
                    for &v in g.neighbors(u) {
                        // Ghost-cell semantics: no local visited filtering
                        // for remote vertices — every edge becomes a
                        // message.
                        bufs[owner(v)].push((v, u));
                    }
                }
                drain_in_rounds(comm, &mut bufs, &mut incoming);
                let mut next = Vec::new();
                for (v, u) in incoming.drain(..) {
                    if let std::collections::hash_map::Entry::Vacant(e) = distance.entry(v) {
                        e.insert(level);
                        parent.insert(v, u as i64);
                        next.push(v);
                    }
                }
                let total = comm.allreduce(next.len() as u64, |a, b| a + b);
                comm.trace_span(SpanKind::Level, level_t, queue.len() as u64);
                if total == 0 {
                    comm.trace_enter_level(NO_LEVEL);
                    break;
                }
                queue = next;
                level += 1;
            }

            owned
                .iter()
                .map(|&v| {
                    (
                        v,
                        distance.get(&v).copied().unwrap_or(UNREACHED),
                        parent.get(&v).copied().unwrap_or(UNREACHED),
                    )
                })
                .collect::<Vec<_>>()
        })
    });

    assemble(source, n, run)
}

/// Assembles the scattered per-vertex results of a harness run into a
/// [`BaselineRun`]. Baseline ownership is not contiguous (modulo layout),
/// so this writes vertex-by-vertex rather than block-by-block.
fn assemble(source: VertexId, n: u64, run: DistRun<Vec<(VertexId, i64, i64)>>) -> BaselineRun {
    let mut output = BfsOutput::unreached(source, n as usize);
    for owned in &run.per_rank {
        for &(v, level, parent) in owned {
            output.levels[v as usize] = level;
            output.parents[v as usize] = parent;
        }
    }
    BaselineRun {
        output,
        seconds: run.seconds,
        per_rank_stats: run.per_rank_stats,
        per_rank_trace: run.per_rank_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use crate::validate::validate_bfs;
    use dmbfs_graph::gen::{grid2d, rmat, RmatConfig};
    use dmbfs_graph::{CsrGraph, EdgeList};

    fn rmat_graph(scale: u32, seed: u64) -> CsrGraph {
        let mut el = rmat(&RmatConfig::graph500(scale, seed));
        el.canonicalize_undirected();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn reference_matches_serial() {
        let g = rmat_graph(8, 31);
        let expected = serial_bfs(&g, 0);
        for p in [1, 2, 4] {
            let run = reference_mpi_bfs(&g, 0, p);
            assert_eq!(run.output.levels, expected.levels, "p = {p}");
            validate_bfs(&g, 0, &run.output.parents, &run.output.levels).unwrap();
        }
    }

    #[test]
    fn pbgl_matches_serial() {
        let g = rmat_graph(8, 37);
        let expected = serial_bfs(&g, 1);
        for p in [1, 3, 4] {
            let run = pbgl_like_bfs(&g, 1, p);
            assert_eq!(run.output.levels, expected.levels, "p = {p}");
            validate_bfs(&g, 1, &run.output.parents, &run.output.levels).unwrap();
        }
    }

    #[test]
    fn baselines_handle_disconnected_graphs() {
        let el = EdgeList::new(6, vec![(0, 1), (1, 0), (4, 5), (5, 4)]);
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(reference_mpi_bfs(&g, 0, 2).output.num_reached(), 2);
        assert_eq!(pbgl_like_bfs(&g, 0, 2).output.num_reached(), 2);
    }

    #[test]
    fn baselines_on_grid_graph() {
        let g = CsrGraph::from_edge_list(&grid2d(5, 5));
        let expected = serial_bfs(&g, 12);
        assert_eq!(reference_mpi_bfs(&g, 12, 3).output.levels, expected.levels);
        assert_eq!(pbgl_like_bfs(&g, 12, 3).output.levels, expected.levels);
    }

    #[test]
    fn baselines_report_positive_time() {
        let g = rmat_graph(7, 41);
        assert!(reference_mpi_bfs(&g, 0, 2).seconds > 0.0);
        assert!(pbgl_like_bfs(&g, 0, 2).seconds > 0.0);
    }

    #[test]
    fn baselines_carry_stats_and_traces() {
        let g = rmat_graph(7, 43);
        let traced = reference_mpi_bfs_with(&g, 0, &RunConfig::flat(3).with_trace(true));
        let plain = reference_mpi_bfs(&g, 0, 3);
        assert_eq!(traced.output.levels, plain.output.levels);
        assert_eq!(traced.output.parents, plain.output.parents);
        assert_eq!(traced.per_rank_stats.len(), 3);
        for (rank, t) in traced.per_rank_trace.iter().enumerate() {
            assert_eq!(t.rank, rank);
            assert!(t.spans.iter().any(|s| s.kind == SpanKind::Search));
            assert!(t.spans.iter().any(|s| s.kind == SpanKind::Level));
        }
        assert!(plain.per_rank_trace.iter().all(|t| t.spans.is_empty()));

        let traced = pbgl_like_bfs_with(&g, 0, &RunConfig::flat(3).with_trace(true));
        let plain = pbgl_like_bfs(&g, 0, 3);
        assert_eq!(traced.output.levels, plain.output.levels);
        assert_eq!(traced.output.parents, plain.output.parents);
        assert!(traced.per_rank_trace.iter().all(|t| !t.spans.is_empty()));
    }
}
