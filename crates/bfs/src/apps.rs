//! Applications built on the distributed substrate — the paper's framing
//! is that BFS is "a key subroutine in several graph algorithms" (§1:
//! spanning trees, shortest paths, connected components, …). This module
//! provides two of them as first-class distributed algorithms, both
//! exercising the same 1D partitioning + owner-aggregation machinery as
//! Algorithm 2:
//!
//! * [`distributed_components`] — connected components via label
//!   propagation (each vertex repeatedly adopts the minimum label in its
//!   closed neighborhood; rounds exchange changed labels with the same
//!   per-owner aggregation + `Alltoallv` structure as a BFS level).
//! * [`distributed_diameter`] — a double-sweep diameter lower bound from
//!   repeated distributed BFS runs (the standard estimator used to
//!   characterize instances like uk-union's ≈140).

use crate::distribute::extract_1d;
use crate::one_d::{bfs1d_run, Bfs1dConfig};
use dmbfs_comm::CommStats;
use dmbfs_graph::{CsrGraph, VertexId};
use dmbfs_runtime::{run_ranks, RunConfig};
use dmbfs_trace::{RankTrace, SpanKind, NO_LEVEL};

/// Result of a distributed connected-components run.
#[derive(Clone, Debug)]
pub struct ComponentsOutput {
    /// Component label per vertex: the minimum vertex id in the component.
    pub labels: Vec<VertexId>,
    /// Label-propagation rounds executed.
    pub rounds: u32,
}

/// [`ComponentsOutput`] plus the harness harvest: per-rank stats, traces,
/// and barrier-to-barrier wall time.
#[derive(Clone, Debug)]
pub struct ComponentsRun {
    /// The algorithm result.
    pub output: ComponentsOutput,
    /// Per-rank communication statistics.
    pub per_rank_stats: Vec<CommStats>,
    /// Per-rank span traces (one [`SpanKind::Level`] span per round);
    /// empty spans unless [`RunConfig::trace`] was set.
    pub per_rank_trace: Vec<RankTrace>,
    /// Wall seconds of the propagation loop, max over ranks.
    pub seconds: f64,
}

impl ComponentsOutput {
    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        let mut labels = self.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

/// Distributed connected components over `p` simulated ranks.
///
/// Label propagation converges in O(diameter) rounds on each component;
/// every round costs one `Alltoallv` (changed labels to neighbor owners)
/// plus one `Allreduce` (global convergence test) — the same communication
/// skeleton as level-synchronous BFS, which is why the paper's analysis
/// transfers directly to this kernel.
pub fn distributed_components(g: &CsrGraph, p: usize) -> ComponentsOutput {
    distributed_components_run(g, &RunConfig::flat(p)).output
}

/// [`distributed_components`] under a full [`RunConfig`]: span tracing and
/// wire-byte accounting ride the shared harness. Label adoption is an
/// inherently sequential min-fold over received messages, so compute stays
/// on the rank main thread regardless of `threads_per_rank`.
pub fn distributed_components_run(g: &CsrGraph, cfg: &RunConfig) -> ComponentsRun {
    let p = cfg.ranks;
    assert!(p > 0);

    let run = run_ranks(cfg, |ctx| {
        let comm = ctx.comm();
        let local = extract_1d(g, p, ctx.rank());
        let nloc = local.count();
        // Every vertex starts in its own component.
        let mut labels: Vec<VertexId> = (0..nloc).map(|i| local.to_global(i)).collect();
        // Initially every vertex is "changed" (must announce its label).
        let mut changed: Vec<usize> = (0..nloc).collect();
        let mut rounds = 0u32;
        ctx.timed(0, || loop {
            comm.trace_enter_level(rounds as i64);
            let round_t = comm.trace_start();
            rounds += 1;
            // Announce changed labels to the owners of all neighbors.
            let pack_t = comm.trace_start();
            let mut send: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); p];
            for &i in &changed {
                let v = local.to_global(i);
                let label = labels[i];
                for &w in local.neighbors(v) {
                    send[local.block.owner(w)].push((w, label));
                }
            }
            comm.trace_span(SpanKind::Pack, pack_t, changed.len() as u64);
            let recv = comm.alltoallv(send);
            // Adopt any smaller label.
            let unpack_t = comm.trace_start();
            let mut next_changed = Vec::new();
            for buf in recv {
                for (w, label) in buf {
                    let i = local.to_local(w);
                    if label < labels[i] {
                        labels[i] = label;
                        next_changed.push(i);
                    }
                }
            }
            next_changed.sort_unstable();
            next_changed.dedup();
            comm.trace_span(SpanKind::Unpack, unpack_t, next_changed.len() as u64);
            let total: u64 = comm.allreduce(next_changed.len() as u64, |a, b| a + b);
            comm.trace_span(SpanKind::Level, round_t, changed.len() as u64);
            if total == 0 {
                comm.trace_enter_level(NO_LEVEL);
                break;
            }
            changed = next_changed;
        });
        (local.range.start, labels, rounds)
    });

    let mut labels = vec![0 as VertexId; g.num_vertices() as usize];
    let mut rounds = 0;
    for (start, rank_labels, rank_rounds) in run.per_rank {
        let s = start as usize;
        labels[s..s + rank_labels.len()].copy_from_slice(&rank_labels);
        rounds = rounds.max(rank_rounds);
    }
    ComponentsRun {
        output: ComponentsOutput { labels, rounds },
        per_rank_stats: run.per_rank_stats,
        per_rank_trace: run.per_rank_trace,
        seconds: run.seconds,
    }
}

/// Double-sweep diameter lower bound via distributed BFS: run BFS from
/// `start`, then from the farthest vertex found, `sweeps` times; return
/// the largest eccentricity observed.
pub fn distributed_diameter(g: &CsrGraph, start: VertexId, sweeps: u32, p: usize) -> u32 {
    let cfg = Bfs1dConfig::flat(p);
    let mut source = start;
    let mut best = 0u32;
    for _ in 0..sweeps.max(1) {
        let run = bfs1d_run(g, source, &cfg);
        let (far, depth) = run
            .output
            .levels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l >= 0)
            .max_by_key(|&(_, &l)| l)
            .map(|(v, &l)| (v as VertexId, l as u32))
            .unwrap_or((source, 0));
        best = best.max(depth);
        if far == source {
            break;
        }
        source = far;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbfs_graph::components::connected_components;
    use dmbfs_graph::gen::{grid2d, path, ring, rmat, RmatConfig};
    use dmbfs_graph::{CsrGraph, EdgeList};

    fn rmat_graph(scale: u32, seed: u64) -> CsrGraph {
        let mut el = rmat(&RmatConfig::graph500(scale, seed));
        el.canonicalize_undirected();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn components_match_union_find() {
        for (name, g) in [
            ("rmat", rmat_graph(8, 3)),
            ("grid", CsrGraph::from_edge_list(&grid2d(5, 7))),
            (
                "disconnected",
                CsrGraph::from_edge_list(&EdgeList::new(
                    7,
                    vec![(0, 1), (1, 0), (2, 3), (3, 2), (3, 4), (4, 3)],
                )),
            ),
        ] {
            let expected = connected_components(&g);
            for p in [1usize, 3, 4] {
                let got = distributed_components(&g, p);
                assert_eq!(
                    got.num_components(),
                    expected.num_components,
                    "{name} p={p}"
                );
                // Same partition: two vertices share a label iff they share
                // a component.
                for u in 0..g.num_vertices() as usize {
                    for v in (u + 1)..g.num_vertices().min(64) as usize {
                        assert_eq!(
                            got.labels[u] == got.labels[v],
                            expected.labels[u] == expected.labels[v],
                            "{name} p={p} ({u},{v})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn component_labels_are_minimum_member_ids() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(5, vec![(4, 2), (2, 4), (2, 1), (1, 2)]));
        let out = distributed_components(&g, 2);
        assert_eq!(out.labels, vec![0, 1, 1, 3, 1]);
    }

    #[test]
    fn rounds_scale_with_diameter() {
        let short = distributed_components(&rmat_graph(8, 5), 2);
        let long = distributed_components(&CsrGraph::from_edge_list(&path(60)), 2);
        assert!(long.rounds > short.rounds);
        assert!(long.rounds as u64 >= 59);
    }

    #[test]
    fn diameter_of_path_is_exact() {
        let g = CsrGraph::from_edge_list(&path(30));
        assert_eq!(distributed_diameter(&g, 15, 2, 3), 29);
    }

    #[test]
    fn diameter_of_ring_is_half() {
        let g = CsrGraph::from_edge_list(&ring(20));
        assert_eq!(distributed_diameter(&g, 0, 3, 2), 10);
    }

    #[test]
    fn diameter_estimate_is_a_lower_bound() {
        let g = rmat_graph(9, 9);
        let est = distributed_diameter(&g, 0, 2, 4);
        // Sanity envelope for a giant-component R-MAT at this scale.
        assert!((2..30).contains(&est), "estimate {est}");
    }
}
