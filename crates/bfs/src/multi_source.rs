//! Bit-parallel multi-source BFS (MS-BFS).
//!
//! Workloads built *on* BFS — diameter estimation, centrality sampling,
//! all-pairs statistics — run many traversals of the same graph. MS-BFS
//! (Then et al., VLDB 2014) batches up to 64 sources into one sweep: each
//! vertex carries a 64-bit `seen` mask (bit `k` = reached by source `k`)
//! and a `frontier` mask; one pass over the adjacency serves every source
//! whose bit is live, amortizing the irregular memory traffic that §5.1
//! identifies as the dominant cost (`(m/p)·α_L,n/p` is paid once for the
//! whole batch instead of once per source).

use dmbfs_graph::{CsrGraph, VertexId};

/// Maximum sources per batch (one bit each).
pub const MAX_BATCH: usize = 64;

/// Levels for every source in the batch: `levels[k][v]` is the distance
/// from `sources[k]` to `v`, or `-1` if unreachable.
#[derive(Clone, Debug)]
pub struct MultiSourceOutput {
    /// The batched sources, in input order.
    pub sources: Vec<VertexId>,
    /// Per-source level arrays.
    pub levels: Vec<Vec<i64>>,
}

/// Runs a bit-parallel BFS from up to [`MAX_BATCH`] sources at once.
///
/// # Panics
/// Panics if `sources` is empty, exceeds [`MAX_BATCH`], or contains an
/// out-of-range vertex.
pub fn multi_source_bfs(g: &CsrGraph, sources: &[VertexId]) -> MultiSourceOutput {
    assert!(
        !sources.is_empty() && sources.len() <= MAX_BATCH,
        "batch must hold 1..=64 sources"
    );
    let n = g.num_vertices() as usize;
    let mut levels: Vec<Vec<i64>> = vec![vec![-1; n]; sources.len()];
    let mut seen = vec![0u64; n];
    let mut frontier = vec![0u64; n];
    let mut frontier_vertices: Vec<VertexId> = Vec::new();
    for (k, &s) in sources.iter().enumerate() {
        assert!((s as usize) < n, "source {s} out of range");
        let bit = 1u64 << k;
        if seen[s as usize] & bit == 0 {
            levels[k][s as usize] = 0;
        }
        if seen[s as usize] == 0 && frontier[s as usize] == 0 {
            frontier_vertices.push(s);
        }
        seen[s as usize] |= bit;
        frontier[s as usize] |= bit;
    }
    // Duplicate sources in one batch share bits correctly: each gets its
    // own level array seeded above.
    for (k, &s) in sources.iter().enumerate() {
        levels[k][s as usize] = 0;
    }

    let mut depth: i64 = 0;
    while !frontier_vertices.is_empty() {
        depth += 1;
        let mut next = vec![0u64; n];
        let mut next_vertices: Vec<VertexId> = Vec::new();
        for &u in &frontier_vertices {
            let mask = frontier[u as usize];
            for &v in g.neighbors(u) {
                // Sources that reach v now for the first time.
                let fresh = mask & !seen[v as usize];
                if fresh != 0 {
                    if next[v as usize] == 0 {
                        next_vertices.push(v);
                    }
                    next[v as usize] |= fresh;
                    seen[v as usize] |= fresh;
                    let mut bits = fresh;
                    while bits != 0 {
                        let k = bits.trailing_zeros() as usize;
                        levels[k][v as usize] = depth;
                        bits &= bits - 1;
                    }
                }
            }
        }
        for &u in &frontier_vertices {
            frontier[u as usize] = 0;
        }
        for &v in &next_vertices {
            frontier[v as usize] = next[v as usize];
        }
        frontier_vertices = next_vertices;
    }

    MultiSourceOutput {
        sources: sources.to_vec(),
        levels,
    }
}

/// Exact diameter of the component containing `probe`, computed by batched
/// eccentricity sweeps over all its members (feasible for graphs up to a
/// few tens of thousands of vertices; the estimator in `apps` covers the
/// rest).
pub fn exact_component_diameter(g: &CsrGraph, probe: VertexId) -> u32 {
    // Membership from one BFS.
    let first = multi_source_bfs(g, &[probe]);
    let members: Vec<VertexId> = (0..g.num_vertices())
        .filter(|&v| first.levels[0][v as usize] >= 0)
        .collect();
    let mut diameter = 0i64;
    for chunk in members.chunks(MAX_BATCH) {
        let out = multi_source_bfs(g, chunk);
        for lv in &out.levels {
            diameter = diameter.max(lv.iter().copied().max().unwrap_or(0));
        }
    }
    diameter as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use dmbfs_graph::components::sample_sources;
    use dmbfs_graph::gen::{grid2d, path, ring, rmat, RmatConfig};
    use dmbfs_graph::EdgeList;

    fn rmat_graph(scale: u32, seed: u64) -> CsrGraph {
        let mut el = rmat(&RmatConfig::graph500(scale, seed));
        el.canonicalize_undirected();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn batch_matches_individual_bfs() {
        let g = rmat_graph(9, 13);
        let sources = sample_sources(&g, 16, 5);
        let out = multi_source_bfs(&g, &sources);
        for (k, &s) in sources.iter().enumerate() {
            let expected = serial_bfs(&g, s);
            assert_eq!(out.levels[k], expected.levels, "source {s}");
        }
    }

    #[test]
    fn full_64_source_batch() {
        let g = rmat_graph(8, 17);
        let sources: Vec<VertexId> = sample_sources(&g, 64, 9);
        assert_eq!(sources.len(), 64);
        let out = multi_source_bfs(&g, &sources);
        // Spot-check a few against serial.
        for k in [0usize, 31, 63] {
            assert_eq!(out.levels[k], serial_bfs(&g, sources[k]).levels);
        }
    }

    #[test]
    fn duplicate_sources_in_batch() {
        let g = CsrGraph::from_edge_list(&path(6));
        let out = multi_source_bfs(&g, &[2, 2, 5]);
        assert_eq!(out.levels[0], out.levels[1]);
        assert_eq!(out.levels[2], serial_bfs(&g, 5).levels);
    }

    #[test]
    fn disconnected_batches_stay_disjoint() {
        let el = EdgeList::new(6, vec![(0, 1), (1, 0), (3, 4), (4, 3)]);
        let g = CsrGraph::from_edge_list(&el);
        let out = multi_source_bfs(&g, &[0, 3]);
        assert_eq!(out.levels[0][3], -1);
        assert_eq!(out.levels[1][0], -1);
        assert_eq!(out.levels[0][1], 1);
        assert_eq!(out.levels[1][4], 1);
    }

    #[test]
    fn exact_diameter_on_known_graphs() {
        assert_eq!(
            exact_component_diameter(&CsrGraph::from_edge_list(&path(17)), 3),
            16
        );
        assert_eq!(
            exact_component_diameter(&CsrGraph::from_edge_list(&ring(10)), 0),
            5
        );
        assert_eq!(
            exact_component_diameter(&CsrGraph::from_edge_list(&grid2d(4, 6)), 7),
            4 + 6 - 2
        );
    }

    #[test]
    fn exact_diameter_ignores_other_components() {
        let el = EdgeList::new(40, {
            // A 3-path and, separately, a long 30-path.
            let mut e = vec![(0u64, 1u64), (1, 0), (1, 2), (2, 1)];
            for v in 10..39u64 {
                e.push((v, v + 1));
                e.push((v + 1, v));
            }
            e
        });
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(exact_component_diameter(&g, 0), 2);
        assert_eq!(exact_component_diameter(&g, 10), 29);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_oversized_batches() {
        let g = CsrGraph::from_edge_list(&path(100));
        let sources: Vec<VertexId> = (0..65).collect();
        multi_source_bfs(&g, &sources);
    }
}
