//! Graph 500-style BFS result validation.
//!
//! The Graph 500 benchmark (whose rules the paper's evaluation follows)
//! requires every reported traversal to pass structural validation. The
//! checks below are the spec's five, adapted to level+parent output:
//!
//! 1. the source is its own parent at level 0;
//! 2. parents and levels agree on reachability;
//! 3. every tree edge `(parents[v], v)` exists in the graph;
//! 4. every tree edge spans exactly one level;
//! 5. every graph edge spans at most one level, and no edge connects a
//!    reached vertex to an unreached one (completeness).

use crate::UNREACHED;
use dmbfs_graph::{CsrGraph, VertexId};

/// A validation failure, naming the violated rule and the witness vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// `parents[source] != source` or `levels[source] != 0`.
    BadSource,
    /// One of `parents[v]`/`levels[v]` is set and the other is not.
    ReachabilityMismatch(VertexId),
    /// `parents[v]` is not a neighbor of `v`.
    TreeEdgeMissing(VertexId),
    /// `levels[v] != levels[parents[v]] + 1`.
    TreeEdgeLevelSkew(VertexId),
    /// A graph edge connects levels differing by more than one.
    EdgeLevelSkew(VertexId, VertexId),
    /// A graph edge leaves the reached set (BFS stopped early).
    Incomplete(VertexId, VertexId),
    /// Array lengths don't match the vertex count.
    WrongLength,
    /// A parent or level value is out of range.
    OutOfRange(VertexId),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::BadSource => write!(f, "source has wrong parent or level"),
            ValidationError::ReachabilityMismatch(v) => {
                write!(f, "vertex {v}: parent/level reachability disagrees")
            }
            ValidationError::TreeEdgeMissing(v) => {
                write!(f, "vertex {v}: tree edge to parent not in graph")
            }
            ValidationError::TreeEdgeLevelSkew(v) => {
                write!(f, "vertex {v}: level is not parent level + 1")
            }
            ValidationError::EdgeLevelSkew(u, v) => {
                write!(f, "edge ({u},{v}) spans more than one level")
            }
            ValidationError::Incomplete(u, v) => {
                write!(f, "edge ({u},{v}) leaves the reached set")
            }
            ValidationError::WrongLength => write!(f, "output arrays have wrong length"),
            ValidationError::OutOfRange(v) => write!(f, "vertex {v}: value out of range"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a BFS tree + level assignment against `g` (undirected
/// interpretation: `g` must store both directions of each edge, as all
/// benchmark graphs here do).
pub fn validate_bfs(
    g: &CsrGraph,
    source: VertexId,
    parents: &[i64],
    levels: &[i64],
) -> Result<(), ValidationError> {
    let n = g.num_vertices() as usize;
    if parents.len() != n || levels.len() != n {
        return Err(ValidationError::WrongLength);
    }
    // Rule 1: the source.
    if parents[source as usize] != source as i64 || levels[source as usize] != 0 {
        return Err(ValidationError::BadSource);
    }
    // Rules 2–4: per-vertex tree checks.
    for v in 0..n {
        let (p, l) = (parents[v], levels[v]);
        if (p == UNREACHED) != (l == UNREACHED) {
            return Err(ValidationError::ReachabilityMismatch(v as VertexId));
        }
        if p == UNREACHED {
            continue;
        }
        if p < 0 || p >= n as i64 || l < 0 || l > n as i64 {
            return Err(ValidationError::OutOfRange(v as VertexId));
        }
        if v as u64 == source {
            continue;
        }
        if !g.has_edge(p as VertexId, v as VertexId) {
            return Err(ValidationError::TreeEdgeMissing(v as VertexId));
        }
        if levels[p as usize] != l - 1 {
            return Err(ValidationError::TreeEdgeLevelSkew(v as VertexId));
        }
    }
    // Rule 5: per-edge checks.
    for (u, v) in g.edges() {
        let (lu, lv) = (levels[u as usize], levels[v as usize]);
        match (lu == UNREACHED, lv == UNREACHED) {
            (false, false) if (lu - lv).abs() > 1 => {
                return Err(ValidationError::EdgeLevelSkew(u, v));
            }
            (false, true) => return Err(ValidationError::Incomplete(u, v)),
            // (true, false) is the same edge seen from the other side and
            // will be caught there; (true, true) is fine.
            _ => {}
        }
    }
    Ok(())
}

/// Validates a BFS on a *directed* graph (§6: "We use undirected graphs
/// for all our experiments, but the BFS approaches can work with directed
/// graphs as well"). Differences from [`validate_bfs`]:
///
/// * tree edges must follow edge direction (`parents[v] → v` stored);
/// * a directed edge `u → v` with `u` reached only bounds `v` from above
///   (`level(v) ≤ level(u) + 1`) — levels may *drop* arbitrarily across an
///   edge, and `v` unreached while `u` is reached is impossible, but
///   `u` unreached while `v` is reached is fine.
pub fn validate_bfs_directed(
    g: &CsrGraph,
    source: VertexId,
    parents: &[i64],
    levels: &[i64],
) -> Result<(), ValidationError> {
    let n = g.num_vertices() as usize;
    if parents.len() != n || levels.len() != n {
        return Err(ValidationError::WrongLength);
    }
    if parents[source as usize] != source as i64 || levels[source as usize] != 0 {
        return Err(ValidationError::BadSource);
    }
    for v in 0..n {
        let (p, l) = (parents[v], levels[v]);
        if (p == UNREACHED) != (l == UNREACHED) {
            return Err(ValidationError::ReachabilityMismatch(v as VertexId));
        }
        if p == UNREACHED {
            continue;
        }
        if p < 0 || p >= n as i64 || l < 0 || l > n as i64 {
            return Err(ValidationError::OutOfRange(v as VertexId));
        }
        if v as u64 == source {
            continue;
        }
        if !g.has_edge(p as VertexId, v as VertexId) {
            return Err(ValidationError::TreeEdgeMissing(v as VertexId));
        }
        if levels[p as usize] != l - 1 {
            return Err(ValidationError::TreeEdgeLevelSkew(v as VertexId));
        }
    }
    for (u, v) in g.edges() {
        let (lu, lv) = (levels[u as usize], levels[v as usize]);
        if lu != UNREACHED {
            if lv == UNREACHED {
                return Err(ValidationError::Incomplete(u, v));
            }
            if lv > lu + 1 {
                return Err(ValidationError::EdgeLevelSkew(u, v));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use dmbfs_graph::gen::{grid2d, path, rmat, RmatConfig};
    use dmbfs_graph::{CsrGraph, EdgeList};

    fn graph() -> CsrGraph {
        CsrGraph::from_edge_list(&grid2d(4, 4))
    }

    #[test]
    fn serial_output_validates() {
        let g = graph();
        let out = serial_bfs(&g, 5);
        validate_bfs(&g, 5, &out.parents, &out.levels).unwrap();
    }

    #[test]
    fn rmat_output_validates() {
        let mut el = rmat(&RmatConfig::graph500(9, 3));
        el.canonicalize_undirected();
        let g = CsrGraph::from_edge_list(&el);
        let out = serial_bfs(&g, 0);
        validate_bfs(&g, 0, &out.parents, &out.levels).unwrap();
    }

    #[test]
    fn detects_bad_source() {
        let g = graph();
        let mut out = serial_bfs(&g, 0);
        out.parents[0] = 1;
        assert_eq!(
            validate_bfs(&g, 0, &out.parents, &out.levels),
            Err(ValidationError::BadSource)
        );
    }

    #[test]
    fn detects_reachability_mismatch() {
        let g = graph();
        let mut out = serial_bfs(&g, 0);
        out.parents[7] = UNREACHED; // level still set
        assert_eq!(
            validate_bfs(&g, 0, &out.parents, &out.levels),
            Err(ValidationError::ReachabilityMismatch(7))
        );
    }

    #[test]
    fn detects_fake_tree_edge() {
        // Two branches from the root: 0-1-3 and 0-2-4. Vertex 1 is at the
        // right level to be 4's parent but is not its neighbor.
        let el = EdgeList::new(
            5,
            vec![
                (0, 1),
                (1, 0),
                (0, 2),
                (2, 0),
                (1, 3),
                (3, 1),
                (2, 4),
                (4, 2),
            ],
        );
        let g = CsrGraph::from_edge_list(&el);
        let mut out = serial_bfs(&g, 0);
        out.parents[4] = 1;
        assert_eq!(
            validate_bfs(&g, 0, &out.parents, &out.levels),
            Err(ValidationError::TreeEdgeMissing(4))
        );
    }

    #[test]
    fn detects_level_skew_on_tree_edge() {
        let g = graph();
        let mut out = serial_bfs(&g, 0);
        out.levels[15] += 1;
        let err = validate_bfs(&g, 0, &out.parents, &out.levels).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::TreeEdgeLevelSkew(_) | ValidationError::EdgeLevelSkew(..)
        ));
    }

    #[test]
    fn detects_incomplete_traversal() {
        let g = CsrGraph::from_edge_list(&path(4));
        let mut out = serial_bfs(&g, 0);
        // Pretend BFS stopped before vertex 3.
        out.parents[3] = UNREACHED;
        out.levels[3] = UNREACHED;
        assert_eq!(
            validate_bfs(&g, 0, &out.parents, &out.levels),
            Err(ValidationError::Incomplete(2, 3))
        );
    }

    #[test]
    fn detects_wrong_length() {
        let g = graph();
        let out = serial_bfs(&g, 0);
        assert_eq!(
            validate_bfs(&g, 0, &out.parents[..10], &out.levels),
            Err(ValidationError::WrongLength)
        );
    }

    #[test]
    fn directed_validator_accepts_directed_bfs() {
        // Directed chain with a back edge: 0 -> 1 -> 2 -> 0 plus 0 -> 3.
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 0), (0, 3)]);
        let g = CsrGraph::from_edge_list(&el);
        let out = serial_bfs(&g, 0);
        assert_eq!(out.levels, vec![0, 1, 2, 1]);
        validate_bfs_directed(&g, 0, &out.parents, &out.levels).unwrap();
        // The undirected validator would (correctly) reject this: edge
        // (2, 0) spans two levels.
        assert!(validate_bfs(&g, 0, &out.parents, &out.levels).is_err());
    }

    #[test]
    fn directed_validator_rejects_early_stop() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        let g = CsrGraph::from_edge_list(&el);
        let mut out = serial_bfs(&g, 0);
        out.levels[2] = UNREACHED;
        out.parents[2] = UNREACHED;
        assert_eq!(
            validate_bfs_directed(&g, 0, &out.parents, &out.levels),
            Err(ValidationError::Incomplete(1, 2))
        );
    }

    #[test]
    fn directed_validator_rejects_overlong_level() {
        let el = EdgeList::new(3, vec![(0, 1), (0, 2), (1, 2)]);
        let g = CsrGraph::from_edge_list(&el);
        let mut out = serial_bfs(&g, 0);
        out.levels[2] = 2; // claims distance 2 though 0 -> 2 exists
        out.parents[2] = 1;
        assert!(validate_bfs_directed(&g, 0, &out.parents, &out.levels).is_err());
    }

    #[test]
    fn accepts_disconnected_graphs() {
        let el = EdgeList::new(5, vec![(0, 1), (1, 0), (3, 4), (4, 3)]);
        let g = CsrGraph::from_edge_list(&el);
        let out = serial_bfs(&g, 0);
        validate_bfs(&g, 0, &out.parents, &out.levels).unwrap();
    }
}
