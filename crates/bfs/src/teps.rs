//! Graph 500 benchmark protocol: multi-source runs and TEPS accounting.
//!
//! §6: "we normalize the serial and parallel execution times by the number
//! of edges visited in a BFS traversal and present a 'Traversed Edges Per
//! Second' (TEPS) rate. [...] We only consider traversal execution times
//! from vertices that appear in the large component, compute the average
//! time using at least 16 randomly-chosen sources vertices for each
//! benchmark graph, and normalize the time by the cumulative number of
//! edges visited. [...] For TEPS calculation, we only count the number of
//! edges in the original directed graph, despite visiting symmetric edges
//! as well."

use crate::serial::traversed_adjacencies;
use crate::BfsOutput;
use dmbfs_graph::components::sample_sources;
use dmbfs_graph::{CsrGraph, VertexId};
use serde::Serialize;
use std::time::Instant;

/// Default source count, per the Graph 500 rule the paper follows.
pub const DEFAULT_SOURCES: usize = 16;

/// One source's measurement.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SourceRun {
    /// The source vertex.
    pub source: VertexId,
    /// Traversal wall seconds.
    pub seconds: f64,
    /// Edges counted for TEPS in this traversal (original directed edges
    /// within the traversed component = stored adjacencies / 2).
    pub edges: u64,
    /// TEPS of this traversal.
    pub teps: f64,
}

/// Aggregate report over all sources of one configuration.
#[derive(Clone, Debug, Serialize)]
pub struct TepsReport {
    /// Per-source measurements.
    pub runs: Vec<SourceRun>,
    /// Mean traversal time (the "mean search time" of Fig. 9/11).
    pub mean_seconds: f64,
    /// Graph 500 headline statistic: cumulative edges over cumulative time.
    pub teps: f64,
    /// Harmonic mean of per-source TEPS (the Graph 500 "mean_TEPS").
    pub harmonic_mean_teps: f64,
}

impl TepsReport {
    /// Builds the aggregate from per-source runs.
    pub fn from_runs(runs: Vec<SourceRun>) -> Self {
        assert!(!runs.is_empty(), "need at least one run");
        let total_seconds: f64 = runs.iter().map(|r| r.seconds).sum();
        let total_edges: u64 = runs.iter().map(|r| r.edges).sum();
        let mean_seconds = total_seconds / runs.len() as f64;
        let teps = total_edges as f64 / total_seconds;
        let harmonic_mean_teps = runs.len() as f64 / runs.iter().map(|r| 1.0 / r.teps).sum::<f64>();
        Self {
            runs,
            mean_seconds,
            teps,
            harmonic_mean_teps,
        }
    }

    /// TEPS in billions (the unit of Figs. 5, 7, 10).
    pub fn gteps(&self) -> f64 {
        self.teps / 1e9
    }

    /// TEPS in millions (the unit of Table 2).
    pub fn mteps(&self) -> f64 {
        self.teps / 1e6
    }
}

/// Computes the TEPS edge count for one traversal: stored adjacencies
/// touched, halved because the benchmark graphs store both directions of
/// every (originally directed) input edge.
pub fn teps_edges(g: &CsrGraph, out: &BfsOutput) -> u64 {
    traversed_adjacencies(g, out) / 2
}

/// Runs the full Graph 500 measurement protocol: samples `num_sources`
/// sources from the large component (deterministically from `seed`), times
/// `bfs` on each, and aggregates.
///
/// `bfs` returns the output plus its own measured seconds when it has a
/// more precise internal timer (the distributed runners time
/// barrier-to-barrier); return `None` seconds to use the harness timer.
pub fn benchmark_bfs(
    g: &CsrGraph,
    num_sources: usize,
    seed: u64,
    mut bfs: impl FnMut(VertexId) -> (BfsOutput, Option<f64>),
) -> TepsReport {
    let (report, _) = benchmark_bfs_detailed(g, num_sources, seed, |source| {
        let (out, seconds) = bfs(source);
        (out, seconds, ())
    });
    report
}

/// Like [`benchmark_bfs`], but each search also yields an instrumentation
/// payload `T` (per-rank stats, traces, …) which is returned **namespaced
/// by its source** rather than merged into one stream. Every search runs in
/// a fresh `World` with fresh per-rank `CommStats`/trace sinks, so payloads
/// from different sampled roots never interleave; this function keeps that
/// separation visible in the API. The regression test
/// `detailed_runs_keep_per_search_instrumentation_separate` pins the
/// invariant (each search's level timings start at level 0 and cover only
/// its own levels).
pub fn benchmark_bfs_detailed<T>(
    g: &CsrGraph,
    num_sources: usize,
    seed: u64,
    mut bfs: impl FnMut(VertexId) -> (BfsOutput, Option<f64>, T),
) -> (TepsReport, Vec<(VertexId, T)>) {
    let sources = sample_sources(g, num_sources, seed);
    assert!(!sources.is_empty(), "graph has no usable sources");
    let mut details = Vec::with_capacity(sources.len());
    let runs = sources
        .into_iter()
        .map(|source| {
            let t0 = Instant::now();
            let (out, reported, detail) = bfs(source);
            let seconds = reported.unwrap_or_else(|| t0.elapsed().as_secs_f64());
            details.push((source, detail));
            let edges = teps_edges(g, &out);
            SourceRun {
                source,
                seconds,
                edges,
                teps: edges as f64 / seconds,
            }
        })
        .collect();
    (TepsReport::from_runs(runs), details)
}

/// Convenience: the per-source TEPS ratio between two reports (how many
/// times faster `ours` is than `theirs`), using the aggregate TEPS.
pub fn speedup(ours: &TepsReport, theirs: &TepsReport) -> f64 {
    ours.teps / theirs.teps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use dmbfs_graph::gen::{rmat, RmatConfig};
    use dmbfs_graph::EdgeList;

    fn rmat_graph(scale: u32, seed: u64) -> CsrGraph {
        let mut el = rmat(&RmatConfig::graph500(scale, seed));
        el.canonicalize_undirected();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn protocol_runs_requested_sources() {
        let g = rmat_graph(9, 2);
        let report = benchmark_bfs(&g, 8, 42, |s| (serial_bfs(&g, s), None));
        assert_eq!(report.runs.len(), 8);
        assert!(report.teps > 0.0);
        assert!(report.mean_seconds > 0.0);
        assert!(report.harmonic_mean_teps > 0.0);
    }

    #[test]
    fn teps_counts_half_the_stored_adjacencies() {
        // Triangle: 6 stored adjacencies, 3 original edges.
        let el = EdgeList::new(3, vec![(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]);
        let g = CsrGraph::from_edge_list(&el);
        let out = serial_bfs(&g, 0);
        assert_eq!(teps_edges(&g, &out), 3);
    }

    #[test]
    fn teps_ignores_untraversed_components() {
        let el = EdgeList::new(5, vec![(0, 1), (1, 0), (3, 4), (4, 3)]);
        let g = CsrGraph::from_edge_list(&el);
        let out = serial_bfs(&g, 0);
        assert_eq!(teps_edges(&g, &out), 1);
    }

    #[test]
    fn aggregate_teps_is_edge_weighted() {
        let runs = vec![
            SourceRun {
                source: 0,
                seconds: 1.0,
                edges: 100,
                teps: 100.0,
            },
            SourceRun {
                source: 1,
                seconds: 1.0,
                edges: 300,
                teps: 300.0,
            },
        ];
        let report = TepsReport::from_runs(runs);
        assert!((report.teps - 200.0).abs() < 1e-9);
        assert!((report.harmonic_mean_teps - 150.0).abs() < 1e-9);
        assert!((report.mean_seconds - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reported_seconds_override_harness_timer() {
        let g = rmat_graph(7, 5);
        let report = benchmark_bfs(&g, 2, 1, |s| (serial_bfs(&g, s), Some(2.0)));
        for run in &report.runs {
            assert!((run.seconds - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn detailed_runs_keep_per_search_instrumentation_separate() {
        use crate::one_d::{bfs1d_run, Bfs1dConfig};
        let g = rmat_graph(8, 7);
        let cfg = Bfs1dConfig::flat(4);
        let (report, details) = benchmark_bfs_detailed(&g, 3, 5, |s| {
            let run = bfs1d_run(&g, s, &cfg);
            (
                run.output,
                Some(run.seconds),
                (run.num_levels, run.per_rank_stats),
            )
        });
        assert_eq!(report.runs.len(), 3);
        assert_eq!(details.len(), 3);
        for ((source, (num_levels, per_rank)), run) in details.iter().zip(&report.runs) {
            assert_eq!(source, &run.source, "payloads stay aligned to sources");
            assert!(
                (run.seconds > 0.0),
                "internal barrier-to-barrier timer flows through"
            );
            for stats in per_rank {
                // Each search's level timings are its own: contiguous from
                // level 0 with one entry per level of *this* search — not
                // accumulated or interleaved across the sampled roots.
                let lvls: Vec<u32> = stats.level_timings.iter().map(|t| t.level).collect();
                let expect: Vec<u32> = (0..*num_levels).collect();
                assert_eq!(lvls, expect, "source {source}");
            }
        }
    }

    #[test]
    fn unit_conversions() {
        let runs = vec![SourceRun {
            source: 0,
            seconds: 1.0,
            edges: 3_000_000_000,
            teps: 3e9,
        }];
        let report = TepsReport::from_runs(runs);
        assert!((report.gteps() - 3.0).abs() < 1e-9);
        assert!((report.mteps() - 3000.0).abs() < 1e-6);
    }
}
