//! Serial level-synchronous BFS — Algorithm 1 of the paper.
//!
//! "The required breadth-first ordering of vertices is accomplished in this
//! case by using two stacks — FS and NS — for storing vertices at the
//! current level (or 'frontier') and the newly-visited set of vertices."
//! The FIFO ordering of the textbook queue algorithm is deliberately
//! relaxed; work complexity stays O(m + n).

use crate::{BfsOutput, UNREACHED};
use dmbfs_graph::{CsrGraph, VertexId};

/// Runs Algorithm 1 from `source`, producing levels and a spanning tree.
///
/// # Examples
/// ```
/// use dmbfs_bfs::serial::serial_bfs;
/// use dmbfs_graph::gen::path;
/// use dmbfs_graph::CsrGraph;
///
/// let g = CsrGraph::from_edge_list(&path(4)); // 0 - 1 - 2 - 3
/// let out = serial_bfs(&g, 0);
/// assert_eq!(out.levels, vec![0, 1, 2, 3]);
/// assert_eq!(out.parents, vec![0, 0, 1, 2]);
/// ```
pub fn serial_bfs(g: &CsrGraph, source: VertexId) -> BfsOutput {
    let n = g.num_vertices() as usize;
    assert!((source as usize) < n, "source out of range");
    let mut out = BfsOutput::unreached(source, n);
    out.levels[source as usize] = 0;
    out.parents[source as usize] = source as i64;

    let mut fs: Vec<VertexId> = vec![source]; // frontier stack
    let mut ns: Vec<VertexId> = Vec::new(); // next stack
    let mut level: i64 = 1;
    while !fs.is_empty() {
        for &u in &fs {
            for &v in g.neighbors(u) {
                let slot = &mut out.levels[v as usize];
                if *slot == UNREACHED {
                    *slot = level;
                    out.parents[v as usize] = u as i64;
                    ns.push(v);
                }
            }
        }
        std::mem::swap(&mut fs, &mut ns);
        ns.clear();
        level += 1;
    }
    out
}

/// Counts the directed adjacencies incident to reached vertices — the
/// "edges visited" quantity the Graph 500 TEPS rate normalizes by
/// (each undirected edge of the traversed component is stored twice, so
/// callers divide by two for undirected inputs).
pub fn traversed_adjacencies(g: &CsrGraph, out: &BfsOutput) -> u64 {
    (0..g.num_vertices())
        .filter(|&v| out.levels[v as usize] != UNREACHED)
        .map(|v| g.degree(v) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbfs_graph::gen::{binary_tree, grid2d, path, ring, rmat, RmatConfig};
    use dmbfs_graph::stats::bfs_levels;
    use dmbfs_graph::{CsrGraph, EdgeList};

    #[test]
    fn path_levels_and_parents() {
        let g = CsrGraph::from_edge_list(&path(5));
        let out = serial_bfs(&g, 0);
        assert_eq!(out.levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.parents, vec![0, 0, 1, 2, 3]);
        assert_eq!(out.depth(), 4);
    }

    #[test]
    fn source_is_its_own_parent() {
        let g = CsrGraph::from_edge_list(&ring(6));
        let out = serial_bfs(&g, 3);
        assert_eq!(out.parents[3], 3);
        assert_eq!(out.levels[3], 0);
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 0)]);
        let g = CsrGraph::from_edge_list(&el);
        let out = serial_bfs(&g, 0);
        assert_eq!(out.levels[2], UNREACHED);
        assert_eq!(out.parents[3], UNREACHED);
        assert_eq!(out.num_reached(), 2);
    }

    #[test]
    fn tree_has_correct_level_sizes() {
        let g = CsrGraph::from_edge_list(&binary_tree(5));
        let out = serial_bfs(&g, 0);
        for k in 0..5 {
            let count = out.levels.iter().filter(|&&l| l == k).count();
            assert_eq!(count, 1 << k);
        }
    }

    #[test]
    fn levels_match_stats_reference() {
        let mut el = rmat(&RmatConfig::graph500(9, 17));
        el.canonicalize_undirected();
        let g = CsrGraph::from_edge_list(&el);
        let out = serial_bfs(&g, 0);
        let reference = bfs_levels(&g, 0);
        #[allow(clippy::needless_range_loop)]
        for v in 0..g.num_vertices() as usize {
            let expected = reference[v].map_or(UNREACHED, |l| l as i64);
            assert_eq!(out.levels[v], expected, "vertex {v}");
        }
    }

    #[test]
    fn parents_are_one_level_up() {
        let g = CsrGraph::from_edge_list(&grid2d(5, 5));
        let out = serial_bfs(&g, 12);
        for v in 0..25usize {
            if out.levels[v] > 0 {
                let p = out.parents[v] as usize;
                assert_eq!(out.levels[p], out.levels[v] - 1, "vertex {v}");
                assert!(g.has_edge(p as u64, v as u64));
            }
        }
    }

    #[test]
    fn traversed_adjacency_count() {
        let el = EdgeList::new(5, vec![(0, 1), (1, 0), (3, 4), (4, 3)]);
        let g = CsrGraph::from_edge_list(&el);
        let out = serial_bfs(&g, 0);
        // Component {0,1} has 2 stored adjacencies.
        assert_eq!(traversed_adjacencies(&g, &out), 2);
    }
}
