//! A Pregel-style vertex-centric framework on the same substrate.
//!
//! §2.2 places this paper against "software systems for large-scale
//! distributed graph algorithm design [...] the Parallel Boost graph
//! library, the Pregel framework. Both these systems adopt a
//! straightforward level-synchronous approach for BFS and related
//! problems." This module implements that programming model — vertex
//! programs, supersteps, message passing, vote-to-halt — over the 1D
//! partition and `Alltoallv` machinery of Algorithm 2, so the abstraction
//! cost the paper alludes to becomes directly measurable: the same BFS
//! expressed as a vertex program ([`BfsProgram`]) runs on the same runtime
//! as the hand-tuned `one_d` implementation.
//!
//! Semantics (after Malewicz et al., SIGMOD'10):
//!
//! * In superstep `s`, [`VertexProgram::compute`] runs for every vertex
//!   that is active or received messages; it reads the messages sent to it
//!   in superstep `s − 1`, may mutate its state, may send messages along
//!   any edge, and votes to halt by returning `false`.
//! * The computation ends when every vertex has halted and no messages are
//!   in flight.

use crate::distribute::extract_1d;
use dmbfs_comm::CommStats;
use dmbfs_graph::{CsrGraph, VertexId};
use dmbfs_runtime::{run_ranks, RunConfig};
use dmbfs_trace::{RankTrace, SpanKind, NO_LEVEL};

/// A user-defined vertex program.
pub trait VertexProgram: Sync {
    /// Per-vertex state.
    type State: Clone + Default + Send;
    /// Message type.
    type Message: Clone + Send + Sync + 'static;
    /// Global aggregate combined across all vertices each superstep and
    /// visible to every vertex in the next one (Pregel's "aggregators").
    /// Use `()` when not needed.
    type Aggregate: Clone + Default + Send + Sync + 'static;

    /// One superstep for one vertex. Returns `true` to stay active for the
    /// next superstep, `false` to vote to halt (a later message reactivates
    /// the vertex regardless). `aggregate` holds the previous superstep's
    /// combined value; contributions go through `contribute`.
    #[allow(clippy::too_many_arguments)]
    fn compute(
        &self,
        superstep: u32,
        vertex: VertexId,
        state: &mut Self::State,
        messages: &[Self::Message],
        neighbors: &[VertexId],
        aggregate: &Self::Aggregate,
        send: &mut dyn FnMut(VertexId, Self::Message),
        contribute: &mut dyn FnMut(Self::Aggregate),
    ) -> bool;

    /// Combines two aggregate contributions (associative + commutative).
    /// The default keeps the unit aggregate for programs that ignore it.
    fn combine(&self, a: Self::Aggregate, _b: Self::Aggregate) -> Self::Aggregate {
        a
    }
}

/// Result of a Pregel run.
#[derive(Clone, Debug)]
pub struct PregelOutput<S> {
    /// Final per-vertex states (global indexing).
    pub states: Vec<S>,
    /// Supersteps executed.
    pub supersteps: u32,
    /// Per-rank communication statistics — the framework's traffic, to be
    /// compared with a hand-tuned implementation of the same computation
    /// (the §2.2 abstraction cost, quantified by
    /// `ablation_framework_overhead`).
    pub per_rank_stats: Vec<CommStats>,
    /// Per-rank span traces (one [`dmbfs_trace::SpanKind::Level`] span per
    /// superstep); empty spans unless [`RunConfig::trace`] was set.
    pub per_rank_trace: Vec<RankTrace>,
    /// Wall seconds of the superstep loop, barrier-to-barrier (max over
    /// ranks).
    pub seconds: f64,
}

/// Runs `program` over `g` on `p` simulated ranks. `initially_active`
/// vertices execute superstep 0 with no messages.
pub fn run_pregel<P: VertexProgram>(
    g: &CsrGraph,
    program: &P,
    initially_active: &[VertexId],
    p: usize,
) -> PregelOutput<P::State>
where
    P::State: 'static,
{
    run_pregel_with(g, program, initially_active, &RunConfig::flat(p))
}

/// [`run_pregel`] under a full [`RunConfig`]: span tracing and wire-byte
/// accounting ride the shared harness. The compute phase stays on the rank
/// main thread — vertex programs mutate shared inboxes through sequential
/// `send` closures, which is the Pregel model's own semantics.
pub fn run_pregel_with<P: VertexProgram>(
    g: &CsrGraph,
    program: &P,
    initially_active: &[VertexId],
    cfg: &RunConfig,
) -> PregelOutput<P::State>
where
    P::State: 'static,
{
    let p = cfg.ranks;
    assert!(p > 0);

    let run = run_ranks(cfg, |ctx| {
        let comm = ctx.comm();
        let local = extract_1d(g, p, ctx.rank());
        let nloc = local.count();
        let mut states: Vec<P::State> = vec![P::State::default(); nloc];
        let mut active = vec![false; nloc];
        let mut inbox: Vec<Vec<P::Message>> = vec![Vec::new(); nloc];
        for &v in initially_active {
            if local.range.contains(&v) {
                active[local.to_local(v)] = true;
            }
        }

        let mut superstep = 0u32;
        let mut aggregate = P::Aggregate::default();
        ctx.timed(0, || loop {
            comm.trace_enter_level(superstep as i64);
            let step_t = comm.trace_start();
            // Compute phase: run active vertices, buffering outgoing
            // messages by owner and folding aggregate contributions.
            let compute_t = comm.trace_start();
            let mut outgoing: Vec<Vec<(u64, P::Message)>> = vec![Vec::new(); p];
            let mut local_agg = P::Aggregate::default();
            let mut computed = 0u64;
            for i in 0..nloc {
                if !active[i] && inbox[i].is_empty() {
                    continue;
                }
                computed += 1;
                let vertex = local.to_global(i);
                let messages = std::mem::take(&mut inbox[i]);
                let mut send = |target: VertexId, msg: P::Message| {
                    outgoing[local.block.owner(target)].push((target, msg));
                };
                let mut contribute = |value: P::Aggregate| {
                    local_agg = program.combine(local_agg.clone(), value);
                };
                active[i] = program.compute(
                    superstep,
                    vertex,
                    &mut states[i],
                    &messages,
                    local.neighbors(vertex),
                    &aggregate,
                    &mut send,
                    &mut contribute,
                );
            }
            comm.trace_span(SpanKind::Pack, compute_t, computed);
            aggregate = comm.allreduce(local_agg, |a, b| program.combine(a, b));
            // Message exchange (the same Alltoallv skeleton as Algorithm 2).
            let received = comm.alltoallv(outgoing);
            let unpack_t = comm.trace_start();
            let mut delivered = 0u64;
            for buf in received {
                for (target, msg) in buf {
                    inbox[local.to_local(target)].push(msg);
                    delivered += 1;
                }
            }
            comm.trace_span(SpanKind::Unpack, unpack_t, delivered);
            // Global termination: all halted and no messages delivered.
            let local_active = active.iter().filter(|&&a| a).count() as u64;
            let pending = comm.allreduce(local_active + delivered, |a, b| a + b);
            superstep += 1;
            comm.trace_span(SpanKind::Level, step_t, computed);
            if pending == 0 {
                comm.trace_enter_level(NO_LEVEL);
                break;
            }
        });

        (local.range.start, states, superstep)
    });

    let mut states: Vec<P::State> = vec![P::State::default(); g.num_vertices() as usize];
    let mut supersteps = 0;
    for (start, rank_states, rank_steps) in run.per_rank {
        let s = start as usize;
        for (k, state) in rank_states.into_iter().enumerate() {
            states[s + k] = state;
        }
        supersteps = supersteps.max(rank_steps);
    }
    PregelOutput {
        states,
        supersteps,
        per_rank_stats: run.per_rank_stats,
        per_rank_trace: run.per_rank_trace,
        seconds: run.seconds,
    }
}

/// BFS as a vertex program — the "straightforward level-synchronous
/// approach" §2.2 attributes to Pregel, for comparison against the
/// hand-tuned Algorithm 2 implementation.
#[derive(Clone, Debug)]
pub struct BfsProgram {
    /// The source vertex.
    pub source: VertexId,
}

/// Per-vertex BFS state under [`BfsProgram`].
#[derive(Clone, Debug, Default)]
pub struct BfsState {
    /// Discovered level, `None` until reached.
    pub level: Option<i64>,
    /// Tree parent, `None` until reached.
    pub parent: Option<VertexId>,
}

impl VertexProgram for BfsProgram {
    type State = BfsState;
    type Message = (i64, VertexId); // (level of sender, sender id)
    type Aggregate = ();

    #[allow(clippy::too_many_arguments)]
    fn compute(
        &self,
        _superstep: u32,
        vertex: VertexId,
        state: &mut BfsState,
        messages: &[(i64, VertexId)],
        neighbors: &[VertexId],
        _aggregate: &(),
        send: &mut dyn FnMut(VertexId, (i64, VertexId)),
        _contribute: &mut dyn FnMut(()),
    ) -> bool {
        if state.level.is_some() {
            return false; // already discovered; ignore late messages
        }
        let discovered = if vertex == self.source {
            Some((0, vertex))
        } else {
            messages
                .iter()
                .min()
                .map(|&(lvl, sender)| (lvl + 1, sender))
        };
        if let Some((level, parent)) = discovered {
            state.level = Some(level);
            state.parent = Some(parent);
            for &w in neighbors {
                send(w, (level, vertex));
            }
        }
        false // vote to halt; messages reactivate
    }
}

/// Connected components as a vertex program (HashMin label propagation).
#[derive(Clone, Debug, Default)]
pub struct MinLabelProgram;

/// Per-vertex state under [`MinLabelProgram`].
#[derive(Clone, Debug, Default)]
pub struct MinLabelState {
    /// Current component label (min vertex id seen); `None` before init.
    pub label: Option<VertexId>,
}

impl VertexProgram for MinLabelProgram {
    type State = MinLabelState;
    type Message = VertexId;
    type Aggregate = ();

    #[allow(clippy::too_many_arguments)]
    fn compute(
        &self,
        superstep: u32,
        vertex: VertexId,
        state: &mut MinLabelState,
        messages: &[VertexId],
        neighbors: &[VertexId],
        _aggregate: &(),
        send: &mut dyn FnMut(VertexId, VertexId),
        _contribute: &mut dyn FnMut(()),
    ) -> bool {
        let incoming = messages.iter().copied().min();
        let current = state.label.unwrap_or(vertex);
        let candidate = incoming.map_or(current, |m| m.min(current));
        if superstep == 0 || candidate < current || state.label.is_none() {
            state.label = Some(candidate);
            for &w in neighbors {
                send(w, candidate);
            }
        }
        false
    }
}

/// PageRank as a vertex program using the aggregator for dangling mass
/// and the convergence test — the framework feature (Pregel's
/// "aggregators", Malewicz et al. §3.3) that global computations need.
/// Runs a fixed damping-0.85 iteration like the SIGMOD paper's example.
#[derive(Clone, Debug)]
pub struct PageRankProgram {
    /// Total vertex count (for teleport mass).
    pub n: u64,
    /// Iterations to run (each iteration = 1 superstep after the seed).
    pub iterations: u32,
}

/// Per-vertex PageRank state.
#[derive(Clone, Debug, Default)]
pub struct PageRankState {
    /// Current score.
    pub score: f64,
}

/// Aggregate: (dangling mass this superstep,) — combined by summation.
#[derive(Clone, Debug, Default)]
pub struct MassAggregate(pub f64);

impl VertexProgram for PageRankProgram {
    type State = PageRankState;
    type Message = f64;
    type Aggregate = MassAggregate;

    #[allow(clippy::too_many_arguments)]
    fn compute(
        &self,
        superstep: u32,
        _vertex: VertexId,
        state: &mut PageRankState,
        messages: &[f64],
        neighbors: &[VertexId],
        aggregate: &MassAggregate,
        send: &mut dyn FnMut(VertexId, f64),
        contribute: &mut dyn FnMut(MassAggregate),
    ) -> bool {
        let n = self.n as f64;
        if superstep == 0 {
            state.score = 1.0 / n;
        } else {
            let received: f64 = messages.iter().sum();
            // Previous superstep's dangling mass arrives via the aggregator.
            state.score = (1.0 - 0.85) / n + 0.85 * (received + aggregate.0 / n);
        }
        if superstep < self.iterations {
            if neighbors.is_empty() {
                contribute(MassAggregate(state.score));
            } else {
                let share = state.score / neighbors.len() as f64;
                for &w in neighbors {
                    send(w, share);
                }
            }
            true
        } else {
            false
        }
    }

    fn combine(&self, a: MassAggregate, b: MassAggregate) -> MassAggregate {
        MassAggregate(a.0 + b.0)
    }
}

/// Convenience: BFS via the Pregel framework, returning the usual output
/// shape for cross-validation.
pub fn pregel_bfs(g: &CsrGraph, source: VertexId, p: usize) -> crate::BfsOutput {
    let program = BfsProgram { source };
    let run = run_pregel(g, &program, &[source], p);
    let mut out = crate::BfsOutput::unreached(source, g.num_vertices() as usize);
    for (v, state) in run.states.iter().enumerate() {
        if let (Some(level), Some(parent)) = (state.level, state.parent) {
            out.levels[v] = level;
            out.parents[v] = parent as i64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use crate::validate::validate_bfs;
    use dmbfs_graph::components::connected_components;
    use dmbfs_graph::gen::{grid2d, path, rmat, RmatConfig};
    use dmbfs_graph::EdgeList;

    fn rmat_graph(scale: u32, seed: u64) -> CsrGraph {
        let mut el = rmat(&RmatConfig::graph500(scale, seed));
        el.canonicalize_undirected();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn pregel_bfs_matches_serial() {
        let g = rmat_graph(9, 3);
        let expected = serial_bfs(&g, 0);
        for p in [1usize, 2, 4] {
            let out = pregel_bfs(&g, 0, p);
            assert_eq!(out.levels, expected.levels, "p = {p}");
            validate_bfs(&g, 0, &out.parents, &out.levels).unwrap();
        }
    }

    #[test]
    fn pregel_bfs_on_structured_graphs() {
        for el in [path(40), grid2d(7, 8)] {
            let g = CsrGraph::from_edge_list(&el);
            let expected = serial_bfs(&g, 1);
            assert_eq!(pregel_bfs(&g, 1, 3).levels, expected.levels);
        }
    }

    #[test]
    fn supersteps_track_diameter() {
        let g = CsrGraph::from_edge_list(&path(30));
        let program = BfsProgram { source: 0 };
        let run = run_pregel(&g, &program, &[0], 2);
        // Depth-29 traversal: one superstep per level plus termination.
        assert!(
            run.supersteps >= 29 && run.supersteps <= 32,
            "{}",
            run.supersteps
        );
    }

    #[test]
    fn min_label_components_match_union_find() {
        let el = EdgeList::new(
            7,
            vec![
                (0, 1),
                (1, 0),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 3),
                (5, 6),
                (6, 5),
            ],
        );
        let g = CsrGraph::from_edge_list(&el);
        let all: Vec<VertexId> = (0..7).collect();
        let run = run_pregel(&g, &MinLabelProgram, &all, 3);
        let labels: Vec<VertexId> = run.states.iter().map(|s| s.label.unwrap()).collect();
        assert_eq!(labels, vec![0, 0, 2, 2, 2, 5, 5]);
        let expected = connected_components(&g);
        assert_eq!(expected.num_components, 3);
    }

    #[test]
    fn min_label_on_rmat() {
        let g = rmat_graph(8, 7);
        let all: Vec<VertexId> = (0..g.num_vertices()).collect();
        let run = run_pregel(&g, &MinLabelProgram, &all, 4);
        let expected = connected_components(&g);
        for u in 0..g.num_vertices() as usize {
            for v in (u + 1)..g.num_vertices() as usize {
                assert_eq!(
                    run.states[u].label == run.states[v].label,
                    expected.labels[u] == expected.labels[v],
                    "({u},{v})"
                );
            }
        }
    }

    #[test]
    fn pagerank_program_matches_dedicated_implementation() {
        let g = rmat_graph(8, 21);
        let n = g.num_vertices();
        let iterations = 30;
        let all: Vec<VertexId> = (0..n).collect();
        let program = PageRankProgram { n, iterations };
        let run = run_pregel(&g, &program, &all, 4);
        let reference = crate::pagerank::serial_pagerank(&g, 0.85, 0.0, iterations);
        for v in 0..n as usize {
            assert!(
                (run.states[v].score - reference.scores[v]).abs() < 1e-9,
                "vertex {v}: {} vs {}",
                run.states[v].score,
                reference.scores[v]
            );
        }
        let total: f64 = run.states.iter().map(|s| s.score).sum();
        assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn halted_world_terminates_immediately() {
        let g = rmat_graph(7, 9);
        // No initially active vertices: one superstep, then done.
        let run = run_pregel(&g, &BfsProgram { source: 0 }, &[], 2);
        assert_eq!(run.supersteps, 1);
        assert!(run.states.iter().all(|s| s.level.is_none()));
    }

    #[test]
    fn framework_overhead_is_visible_in_messages() {
        // Pregel BFS sends one message per edge out of each discovered
        // vertex — strictly more traffic than Algorithm 2's aggregated
        // exchange for the same traversal (the §2.2 abstraction cost).
        let g = rmat_graph(9, 13);
        let s = dmbfs_graph::components::sample_sources(&g, 1, 1)[0];
        let hand_tuned = crate::one_d::bfs1d_run(&g, s, &crate::one_d::Bfs1dConfig::flat(4));
        let out = pregel_bfs(&g, s, 4);
        assert_eq!(out.levels, hand_tuned.output.levels);
    }
}
