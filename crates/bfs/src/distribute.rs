//! Graph partitioning for the distributed algorithms.
//!
//! Real deployments distribute the graph during generation/ingest; here the
//! full graph lives in the driver process and each simulated rank extracts
//! its partition on startup. Extraction is read-only and happens before the
//! timed BFS region, mirroring the untimed "graph construction" phase of
//! the Graph 500 protocol.

use dmbfs_graph::{Block1D, CsrGraph, Grid2D, OwnerMap2D, VertexId};
use std::ops::Range;

/// Rank-local piece of a 1D vertex partition (§3.1): a contiguous vertex
/// range plus all outgoing adjacencies, re-indexed to a local CSR.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Local1d {
    /// Global vertex range owned by this rank.
    pub range: Range<u64>,
    /// The ownership map over all ranks.
    pub block: Block1D,
    /// Local CSR offsets (length `count + 1`).
    pub offsets: Vec<usize>,
    /// Adjacency targets as *global* vertex ids (targets are usually
    /// remote, so local re-indexing would not help).
    pub adjacency: Vec<VertexId>,
}

impl Local1d {
    /// Number of owned vertices.
    pub fn count(&self) -> usize {
        (self.range.end - self.range.start) as usize
    }

    /// Local index of global vertex `v` (must be owned).
    #[inline]
    pub fn to_local(&self, v: VertexId) -> usize {
        debug_assert!(self.range.contains(&v));
        (v - self.range.start) as usize
    }

    /// Global id of local index `i`.
    #[inline]
    pub fn to_global(&self, i: usize) -> VertexId {
        self.range.start + i as u64
    }

    /// Neighbors (global ids) of owned global vertex `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = self.to_local(v);
        &self.adjacency[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of locally stored adjacencies.
    pub fn num_local_edges(&self) -> usize {
        self.adjacency.len()
    }
}

/// Extracts rank `rank`'s 1D partition of `g` over `p` ranks.
pub fn extract_1d(g: &CsrGraph, p: usize, rank: usize) -> Local1d {
    let block = Block1D::new(g.num_vertices(), p);
    let range = block.range(rank);
    let goff = g.offsets();
    let base = goff[range.start as usize];
    let offsets: Vec<usize> = (range.start..=range.end)
        .map(|v| goff[v as usize] - base)
        .collect();
    let adjacency = g.adjacency()[goff[range.start as usize]..goff[range.end as usize]].to_vec();
    Local1d {
        range,
        block,
        offsets,
        adjacency,
    }
}

/// Rank-local piece of a 2D checkerboard partition (§3.2): processor
/// `P(i, j)` holds submatrix `A_ij` covering matrix rows `row_range(i)` ×
/// columns `col_range(j)`, where entry `(v, u)` represents edge `u → v`
/// (the matrix is stored pre-transposed, as §3.2 assumes, so SpMSV pushes
/// the frontier along out-edges).
#[derive(Clone, Debug)]
pub struct Local2d {
    /// Grid coordinates of this rank.
    pub coords: (usize, usize),
    /// The global ownership map.
    pub map: OwnerMap2D,
    /// Global matrix-row range of this block (output/destination vertices).
    pub row_range: Range<u64>,
    /// Global matrix-column range of this block (input/source vertices).
    pub col_range: Range<u64>,
    /// Submatrix nonzeros as (block-local row, block-local col).
    pub triples: Vec<(u64, u64)>,
}

impl Local2d {
    /// Block height (output dimension of the local SpMSV).
    pub fn nrows(&self) -> u64 {
        self.row_range.end - self.row_range.start
    }

    /// Block width (input dimension of the local SpMSV).
    pub fn ncols(&self) -> u64 {
        self.col_range.end - self.col_range.start
    }
}

/// Extracts `P(i, j)`'s submatrix: scans only the sources in
/// `col_range(j)`, so aggregate extraction work over one processor row is
/// `O(m)`.
pub fn extract_2d(g: &CsrGraph, grid: Grid2D, i: usize, j: usize) -> Local2d {
    let map = OwnerMap2D::new(g.num_vertices(), grid);
    let row_range = map.matrix_row_range(i);
    let col_range = map.matrix_col_range(j);
    let mut triples = Vec::new();
    for u in col_range.clone() {
        for &v in g.neighbors(u) {
            if row_range.contains(&v) {
                triples.push((v - row_range.start, u - col_range.start));
            }
        }
    }
    Local2d {
        coords: (i, j),
        map,
        row_range,
        col_range,
        triples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbfs_graph::gen::{rmat, RmatConfig};
    use dmbfs_graph::{CsrGraph, EdgeList};

    fn sample() -> CsrGraph {
        let mut el = rmat(&RmatConfig::graph500(7, 77));
        el.canonicalize_undirected();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn one_d_pieces_cover_all_edges() {
        let g = sample();
        let p = 5;
        let total: usize = (0..p).map(|r| extract_1d(&g, p, r).num_local_edges()).sum();
        assert_eq!(total as u64, g.num_edges());
    }

    #[test]
    fn one_d_neighbors_match_global() {
        let g = sample();
        let p = 4;
        for r in 0..p {
            let local = extract_1d(&g, p, r);
            for v in local.range.clone() {
                assert_eq!(local.neighbors(v), g.neighbors(v), "vertex {v}");
            }
        }
    }

    #[test]
    fn one_d_local_global_round_trip() {
        let g = sample();
        let local = extract_1d(&g, 3, 1);
        for v in local.range.clone() {
            assert_eq!(local.to_global(local.to_local(v)), v);
        }
    }

    #[test]
    fn two_d_blocks_cover_all_edges_exactly_once() {
        let g = sample();
        let grid = Grid2D::new(2, 3);
        let total: usize = (0..2)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| extract_2d(&g, grid, i, j).triples.len())
            .sum();
        assert_eq!(total as u64, g.num_edges());
    }

    #[test]
    fn two_d_block_contains_expected_entry() {
        // Edge 0 -> 1 must appear in the block owning row 1, col 0.
        let el = EdgeList::new(4, vec![(0, 1), (1, 0), (2, 3), (3, 2)]);
        let g = CsrGraph::from_edge_list(&el);
        let grid = Grid2D::new(2, 2);
        let map = OwnerMap2D::new(4, grid);
        let i = 0; // row range 0..2 contains v=1
        let j = 0; // col range 0..2 contains u=0
        let block = extract_2d(&g, grid, i, j);
        assert_eq!(map.matrix_row_range(0), 0..2);
        assert!(block.triples.contains(&(1, 0)), "{:?}", block.triples);
    }

    #[test]
    fn two_d_triples_are_in_block_bounds() {
        let g = sample();
        let grid = Grid2D::new(4, 2);
        for i in 0..4 {
            for j in 0..2 {
                let b = extract_2d(&g, grid, i, j);
                for &(r, c) in &b.triples {
                    assert!(r < b.nrows() && c < b.ncols());
                }
            }
        }
    }
}
