//! 2D checkerboard-partitioned distributed BFS — Algorithm 3 of the paper.
//!
//! "Each BFS iteration is computationally equivalent to a sparse
//! matrix-sparse vector multiplication (SpMSV) [...]
//! `x_{k+1} ← Aᵀ ⊗ x_k ⊙ ∪x_i`" (§3.2). Processors form a `pr × pc` grid;
//! each iteration performs:
//!
//! 1. **TransposeVector** — redistribute the frontier so that processor
//!    column `j` holds the subvector its matrix columns need ("simply a
//!    pairwise exchange between P(i,j) and P(j,i)" on square grids).
//! 2. **Expand** — `Allgatherv` along each processor *column* (`pr`
//!    participants): every processor obtains the full frontier piece `f_j`.
//! 3. **Local SpMSV** — `t_i ← A_ij ⊗ f_j` over the (select, max)
//!    semiring; the hybrid variant splits the local matrix row-wise across
//!    threads (§4.1, Fig. 2).
//! 4. **Fold** — `Alltoallv` along each processor *row* (`pc`
//!    participants) delivers each candidate parent to the vector owner.
//! 5. **Mask & update** — `t_ij ← t_ij ⊙ π̄_ij; π_ij ← π_ij + t_ij;
//!    f_ij ← t_ij` (lines 9–11): keep only first discoveries.
//!
//! The collectives thus involve only `pr` or `pc ≈ √p` processors — the
//! communication-avoidance the paper's abstract claims ("reduces the
//! communication overhead at high process concurrencies by a factor of
//! 3.5").
//!
//! [`VectorDistribution`] selects between the paper's balanced "2D vector
//! distribution" and the diagonal-only layout whose severe load imbalance
//! §4.3 / Fig. 4 demonstrates.

use crate::distribute::{extract_2d, Local2d};
use crate::frontier_codec::{
    decode_pairs, decode_set, encode_pairs, encode_set, merge_level_stats, Codec, LevelCodecStats,
    Sieve,
};
use crate::{BfsOutput, UNREACHED};
use dmbfs_comm::algorithms::{allgather_doubling, allgather_ring};
use dmbfs_comm::{Comm, CommStats, LevelTiming, WireBuf};
use dmbfs_graph::{CsrGraph, Grid2D, VertexId};
use dmbfs_matrix::{spmsv, Dcsc, MergeKernel, RowSplitDcsc, SelectMax, SpaWorkspace, SparseVector};
use dmbfs_runtime::{run_ranks, scatter_block, FaultPlan, RunConfig};
use dmbfs_trace::{RankTrace, SpanKind};
use rayon::prelude::*;
use std::ops::Range;
use std::time::{Duration, Instant};

/// How frontier/parent vector entries are assigned to processors (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VectorDistribution {
    /// The paper's choice: every processor owns ≈ n/p vector elements,
    /// matching the matrix distribution. "Distributing the vectors over
    /// all processors (2D vector distribution) remedies this problem and
    /// we observe almost no load imbalance."
    #[default]
    TwoD,
    /// Vector owned by diagonal processors only (requires a square grid) —
    /// adequate for SpMV, but for SpMSV it "causes severe imbalance": the
    /// diagonal processor performs the entire merge while its row idles
    /// (Fig. 4 shows the resulting 3–4× idle time).
    Diagonal,
}

/// Which allgather algorithm runs the expand phase (§7's collective-
/// optimization future work: the schedules differ in latency/bandwidth
/// trade-offs, visible in the recorded event streams and the replay model).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExpandAlgorithm {
    /// One logical exchange on the runtime's board (an ideal MPI
    /// implementation's `MPI_Allgatherv`).
    #[default]
    Board,
    /// Ring allgather: `pr − 1` neighbor rounds, bandwidth-optimal.
    Ring,
    /// Recursive doubling: `log₂ pr` rounds, latency-optimal; requires a
    /// power-of-two processor-column size (falls back to Board otherwise).
    Doubling,
}

/// Configuration of a 2D run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bfs2dConfig {
    /// The processor grid (`Grid2D::closest_square(p)` reproduces §6).
    pub grid: Grid2D,
    /// Threads per rank: 1 = "Flat MPI", >1 = "Hybrid".
    pub threads_per_rank: usize,
    /// Vector distribution (§4.3 ablation).
    pub distribution: VectorDistribution,
    /// SpMSV merge kernel (§4.2; `Auto` is the paper's polyalgorithm).
    pub kernel: MergeKernel,
    /// Expand-phase collective algorithm (§7 ablation).
    pub expand: ExpandAlgorithm,
    /// Wire encoding of the transpose/expand/fold payloads (see
    /// [`crate::frontier_codec`]). The Ring/Doubling expand schedules and
    /// the rectangular-grid transpose keep their typed collectives.
    pub codec: Codec,
    /// Sender-side filtering of fold rows already emitted at an earlier
    /// level. Ignored under [`Codec::Off`].
    pub sieve: bool,
    /// Record per-rank span traces (see `dmbfs-trace`). Strictly an
    /// observer: the computed parent tree is bit-identical either way.
    pub trace: bool,
    /// Attach the collective-matching verifier (see `docs/verification.md`).
    /// Strictly an observer: the computed parent tree is bit-identical
    /// either way.
    pub verify: bool,
    /// Deterministic fault-injection schedule (see `docs/fault-injection.md`).
    /// Empty by default.
    pub faults: FaultPlan,
    /// Overrides the verifier's watchdog timeout (`None` = env default).
    pub verify_timeout: Option<Duration>,
    /// Comm/compute overlap: `Some(k)` moves each level's fold exchange
    /// through a `k`-chunk double-buffered pipeline on the nonblocking
    /// `ialltoallv_wire` (encode chunk `c + 1` while chunk `c` is in
    /// flight). `None` (the default) keeps the blocking fold. Parent trees
    /// are bit-identical either way; ignored under [`Codec::Off`].
    pub overlap: Option<std::num::NonZeroUsize>,
    /// Record the ordered collective-fingerprint sequence each rank
    /// issues (see [`dmbfs_runtime::RunConfig::schedule_capture`]).
    /// Strictly an observer.
    pub schedule_capture: bool,
}

impl Bfs2dConfig {
    /// Flat MPI on `grid` with the paper's defaults.
    pub fn flat(grid: Grid2D) -> Self {
        Self {
            grid,
            threads_per_rank: 1,
            distribution: VectorDistribution::TwoD,
            kernel: MergeKernel::Auto,
            expand: ExpandAlgorithm::Board,
            codec: Codec::Adaptive,
            sieve: true,
            trace: false,
            verify: false,
            faults: FaultPlan::none(),
            verify_timeout: None,
            overlap: None,
            schedule_capture: false,
        }
    }

    /// Hybrid MPI + multithreading on `grid`.
    pub fn hybrid(grid: Grid2D, threads_per_rank: usize) -> Self {
        assert!(threads_per_rank >= 1);
        Self {
            threads_per_rank,
            ..Self::flat(grid)
        }
    }

    /// Replaces the frontier codec.
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Enables or disables the sender-side fold sieve.
    pub fn with_sieve(mut self, sieve: bool) -> Self {
        self.sieve = sieve;
        self
    }

    /// Enables or disables span tracing.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Enables or disables the collective-matching verifier.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Replaces the fault-injection schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the verifier's watchdog timeout.
    pub fn with_verify_timeout(mut self, timeout: Duration) -> Self {
        self.verify_timeout = Some(timeout);
        self
    }

    /// Sets the fold-exchange overlap chunk count (see
    /// [`Bfs2dConfig::overlap`]); `None` disables the pipeline.
    pub fn with_overlap(mut self, overlap: Option<std::num::NonZeroUsize>) -> Self {
        self.overlap = overlap;
        self
    }

    /// Enables or disables collective-schedule capture (see
    /// [`Bfs2dConfig::schedule_capture`]).
    pub fn with_schedule_capture(mut self, capture: bool) -> Self {
        self.schedule_capture = capture;
        self
    }

    /// True when this is the hybrid variant.
    pub fn is_hybrid(&self) -> bool {
        self.threads_per_rank > 1
    }

    /// The runtime-layer view of this configuration: everything the
    /// execution harness needs, minus the 2D-specific algorithm knobs
    /// (grid shape, distribution, kernel, expand schedule).
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            ranks: self.grid.size(),
            threads_per_rank: self.threads_per_rank,
            codec: self.codec,
            sieve: self.sieve,
            trace: self.trace,
            verify: self.verify,
            faults: self.faults,
            verify_timeout: self.verify_timeout,
            overlap: self.overlap,
            // The 2D SpMSV driver has no bottom-up step; its runtime view
            // is always top-down.
            direction: dmbfs_runtime::DirectionMode::TopDown,
            schedule_capture: self.schedule_capture,
        }
    }
}

/// Per-rank computation work counters of one 2D run — the quantities whose
/// spread across the grid exposes the §4.3 load imbalance (Fig. 4).
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct RankWork {
    /// SpMSV output entries produced across all levels.
    pub spmsv_output: u64,
    /// Fold entries received and merged (the work that piles onto diagonal
    /// processors under the diagonal vector distribution).
    pub fold_received: u64,
    /// Expanded frontier entries consumed as SpMSV input.
    pub expand_received: u64,
}

impl RankWork {
    /// Scalar work proxy used for imbalance heatmaps.
    pub fn total(&self) -> u64 {
        self.spmsv_output + self.fold_received + self.expand_received
    }
}

/// Results and measurements of a 2D run.
#[derive(Clone, Debug)]
pub struct Dist2dRun {
    /// Assembled global result.
    pub output: BfsOutput,
    /// Per-world-rank communication statistics (row-major grid order).
    pub per_rank_stats: Vec<CommStats>,
    /// Per-world-rank computation work counters.
    pub per_rank_work: Vec<RankWork>,
    /// Wall seconds of the timed region (max over ranks).
    pub seconds: f64,
    /// BFS levels executed.
    pub num_levels: u32,
    /// Per-level codec telemetry, merged across ranks (empty under
    /// [`Codec::Off`]).
    pub codec_levels: Vec<LevelCodecStats>,
    /// Per-world-rank span traces (row-major grid order); empty spans
    /// unless [`Bfs2dConfig::trace`] was set. Row/column-communicator
    /// collectives appear in the owning rank's trace.
    pub per_rank_trace: Vec<RankTrace>,
    /// Per-world-rank collective-fingerprint sequences; empty unless
    /// [`Bfs2dConfig::schedule_capture`] was set.
    pub per_rank_schedule: Vec<Vec<&'static str>>,
}

/// Runs the 2D algorithm, returning the assembled result only.
///
/// # Examples
/// ```
/// use dmbfs_bfs::serial::serial_bfs;
/// use dmbfs_bfs::two_d::{bfs2d, Bfs2dConfig};
/// use dmbfs_graph::gen::grid2d;
/// use dmbfs_graph::{CsrGraph, Grid2D};
///
/// let g = CsrGraph::from_edge_list(&grid2d(4, 4));
/// let out = bfs2d(&g, 5, &Bfs2dConfig::flat(Grid2D::new(2, 2)));
/// assert_eq!(out.levels(), serial_bfs(&g, 5).levels());
/// ```
pub fn bfs2d(g: &CsrGraph, source: VertexId, cfg: &Bfs2dConfig) -> BfsOutput {
    bfs2d_run(g, source, cfg).output
}

/// Runs the 2D algorithm with full instrumentation.
pub fn bfs2d_run(g: &CsrGraph, source: VertexId, cfg: &Bfs2dConfig) -> Dist2dRun {
    assert!(source < g.num_vertices(), "source out of range");
    if cfg.distribution == VectorDistribution::Diagonal {
        assert!(
            cfg.grid.is_square(),
            "diagonal vector distribution requires a square grid"
        );
    }
    let grid = cfg.grid;
    let p = grid.size();

    // The harness attaches the tracer before this closure runs — and
    // therefore before the splits — so the row/column communicators share
    // the sink and their collectives land in the rank's trace.
    let run = run_ranks(&cfg.run_config(), |ctx| {
        let comm = ctx.comm();
        let (i, j) = grid.coords_of(ctx.rank());
        let block = extract_2d(g, grid, i, j);
        let state = RankState::new(comm, cfg, block);

        // Row communicator P(i, :) for the fold, column communicator
        // P(:, j) for the expand. Sub-rank = grid position by construction.
        let row_comm = comm.split(i as u64, j as u64);
        let col_comm = comm.split((grid.rows() + j) as u64, i as u64);
        debug_assert_eq!(row_comm.rank(), j);
        debug_assert_eq!(col_comm.rank(), i);

        ctx.reset_accounting(); // exclude setup from stats and trace
        let (levels, parents, num_levels, work, codec_levels) = ctx.timed(source, || {
            state.run(comm, &row_comm, &col_comm, source, ctx.pool())
        });

        // One stream per rank: world events (transpose, allreduce) plus the
        // row/column communicator events (fold, expand).
        ctx.merge_stats(row_comm.take_stats());
        ctx.merge_stats(col_comm.take_stats());
        (
            state.vrange.clone(),
            levels,
            parents,
            num_levels,
            work,
            codec_levels,
        )
    });

    let mut output = BfsOutput::unreached(source, g.num_vertices() as usize);
    let mut per_rank_work = Vec::with_capacity(p);
    let mut per_rank_codec = Vec::with_capacity(p);
    let mut num_levels = 0;
    for (vrange, levels, parents, rank_levels, work, codec_levels) in run.per_rank {
        scatter_block(&mut output.levels, vrange.start, &levels);
        scatter_block(&mut output.parents, vrange.start, &parents);
        per_rank_work.push(work);
        per_rank_codec.push(codec_levels);
        num_levels = num_levels.max(rank_levels);
    }
    Dist2dRun {
        output,
        per_rank_stats: run.per_rank_stats,
        per_rank_work,
        seconds: run.seconds,
        num_levels,
        codec_levels: merge_level_stats(&per_rank_codec),
        per_rank_trace: run.per_rank_trace,
        per_rank_schedule: run.per_rank_schedule,
    }
}

/// Per-rank algorithm state.
struct RankState {
    cfg: Bfs2dConfig,
    coords: (usize, usize),
    block: Local2d,
    /// Flat-variant matrix (unsplit DCSC).
    matrix: Option<Dcsc>,
    /// Hybrid-variant matrix (row-split across threads).
    split: Option<RowSplitDcsc>,
    /// Vector range owned under the configured distribution.
    vrange: Range<u64>,
}

impl RankState {
    fn new(_comm: &Comm, cfg: &Bfs2dConfig, block: Local2d) -> Self {
        let (i, j) = block.coords;
        let vrange = match cfg.distribution {
            VectorDistribution::TwoD => block.map.vector_range(i, j),
            VectorDistribution::Diagonal => block.map.diagonal_range(i, j),
        };
        let (matrix, split) = if cfg.is_hybrid() {
            (
                None,
                Some(RowSplitDcsc::from_triples(
                    block.nrows(),
                    block.ncols(),
                    &block.triples,
                    cfg.threads_per_rank,
                )),
            )
        } else {
            (
                Some(Dcsc::from_triples(
                    block.nrows(),
                    block.ncols(),
                    &block.triples,
                )),
                None,
            )
        };
        Self {
            cfg: *cfg,
            coords: (i, j),
            block,
            matrix,
            split,
            vrange,
        }
    }

    /// Vector owner (grid coords) of global vertex `g`.
    fn vector_owner(&self, g: VertexId) -> (usize, usize) {
        match self.cfg.distribution {
            VectorDistribution::TwoD => self.block.map.vector_owner(g),
            VectorDistribution::Diagonal => self.block.map.diagonal_owner(g),
        }
    }

    /// The level-synchronous loop of Algorithm 3.
    fn run(
        &self,
        comm: &Comm,
        row_comm: &Comm,
        col_comm: &Comm,
        source: VertexId,
        pool: Option<&rayon::ThreadPool>,
    ) -> (Vec<i64>, Vec<i64>, u32, RankWork, Vec<LevelCodecStats>) {
        // schedule: replicated
        let grid = self.cfg.grid;
        let (i, j) = self.coords;
        let nloc = (self.vrange.end - self.vrange.start) as usize;
        let mut levels = vec![UNREACHED; nloc];
        let mut parents = vec![UNREACHED; nloc];
        let mut work = RankWork::default();
        let mut ws: SpaWorkspace<u64> = SpaWorkspace::new(self.block.nrows());
        // schedule: replicated
        let codec = self.cfg.codec;
        // One bit per local matrix row: a row folded once was claimed by
        // its vector owner at that level, so later re-emissions are
        // duplicates the owner's mask would discard anyway.
        let fold_sieve = (self.cfg.sieve && codec != Codec::Off)
            .then(|| Sieve::new(self.block.nrows() as usize));
        let mut codec_levels: Vec<LevelCodecStats> = Vec::new();

        // Line 2: f(s) ← s at the vector owner of the source.
        let mut frontier: Vec<VertexId> = Vec::new();
        if self.vector_owner(source) == (i, j) {
            let s = (source - self.vrange.start) as usize;
            levels[s] = 0;
            parents[s] = source as i64;
            frontier.push(source);
        }

        let mut level: i64 = 1;
        loop {
            comm.trace_enter_level(level - 1);
            let level_t = comm.trace_start();
            let level_start = Instant::now();
            // A 2D level communicates on three communicators: world
            // (transpose, allreduce), column (expand), row (fold). Sum
            // their wall-time deltas to attribute the level's time.
            let comm_before = comm.comm_wall() + row_comm.comm_wall() + col_comm.comm_wall();
            let mut lvl = LevelCodecStats {
                level: level as usize,
                ..Default::default()
            };
            // Line 5: TransposeVector (wire-encoded on square grids).
            let transpose_t = comm.trace_start();
            let mut transposed = if codec != Codec::Off && grid.is_square() {
                debug_assert!(frontier.iter().all(|&g| self.block.map.col_owner(g) == i));
                let partner = grid.rank_of(j, i);
                let buf = encode_set(&frontier, self.vrange.clone(), codec);
                if partner != comm.rank() {
                    lvl.note(&buf);
                }
                decode_set(comm.sendrecv_wire(partner, buf).bytes())
            } else {
                self.transpose(comm, &frontier)
            };
            // The rectangular transpose concatenates pieces from several
            // senders; sort so every downstream path sees canonical order.
            transposed.sort_unstable();
            transposed.dedup();
            comm.trace_span(SpanKind::Transpose, transpose_t, transposed.len() as u64);
            // Line 6: expand along the processor column.
            let expand_t = comm.trace_start();
            // The expand algorithm is shared config, not rank state.
            // schedule: replicated
            let gathered = match self.cfg.expand {
                ExpandAlgorithm::Board if codec != Codec::Off => {
                    let buf = encode_set(&transposed, self.block.col_range.clone(), codec);
                    lvl.note(&buf);
                    col_comm
                        .allgatherv_wire(buf)
                        .iter()
                        .map(|b| decode_set(b.bytes()))
                        .collect()
                }
                ExpandAlgorithm::Board => col_comm.allgatherv(transposed),
                ExpandAlgorithm::Ring => allgather_ring(col_comm, transposed),
                ExpandAlgorithm::Doubling if col_comm.size().is_power_of_two() => {
                    allgather_doubling(col_comm, transposed)
                }
                ExpandAlgorithm::Doubling => col_comm.allgatherv(transposed),
            };
            let fvec = self.assemble_frontier(gathered);
            comm.trace_span(SpanKind::ExpandPhase, expand_t, fvec.nnz() as u64);
            work.expand_received += fvec.nnz() as u64;
            // Line 7: local SpMSV on the (select, max) semiring.
            let spmsv_t = comm.trace_start();
            let t = match (pool, &self.split, &self.matrix) {
                (Some(pool), Some(split), _) => {
                    let batch_t = comm.trace_start();
                    let t = pool.install(|| split.par_spmsv::<SelectMax>(&fvec, self.cfg.kernel));
                    comm.trace_span(SpanKind::TaskBatch, batch_t, fvec.nnz() as u64);
                    t
                }
                (_, _, Some(m)) => spmsv::<SelectMax>(m, &fvec, self.cfg.kernel, &mut ws),
                _ => unreachable!("one matrix representation always exists"),
            };
            comm.trace_span(SpanKind::SpMSV, spmsv_t, t.nnz() as u64);
            work.spmsv_output += t.nnz() as u64;
            // Line 8: fold along the processor row to the vector owners.
            let fold_t = comm.trace_start();
            let folded: Vec<Vec<(u64, u64)>> =
                // Overlap depth and codec are shared config, not rank state.
                // schedule: replicated
                match self.cfg.overlap.filter(|_| codec != Codec::Off) {
                    // The chunked double-buffered pipeline: the SpMSV output is
                    // split into chunks, each chunk's encode overlaps the
                    // previous chunk's in-flight exchange, and the decoded
                    // pieces concatenate into the same multiset the blocking
                    // fold delivers (the level-end mask below is a sort +
                    // max-parent reduce, so batching cannot change the tree).
                    Some(kc) => {
                        let entries: Vec<(u64, u64)> = t.iter().collect();
                        self.fold_overlapped(
                            comm,
                            row_comm,
                            &entries,
                            pool,
                            kc.get(),
                            fold_sieve.as_ref(),
                            &mut lvl,
                        )
                    }
                    None => {
                        let mut fold_bufs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); grid.cols()];
                        for (r, parent) in t.iter() {
                            if let Some(s) = fold_sieve.as_ref() {
                                if s.test_and_set(r as usize) {
                                    lvl.sieve_hits += 1;
                                    continue;
                                }
                            }
                            let g = self.block.row_range.start + r;
                            let (oi, oj) = self.vector_owner(g);
                            debug_assert_eq!(oi, i, "fold target must stay in the processor row");
                            fold_bufs[oj].push((g, parent));
                        }
                        if codec == Codec::Off {
                            row_comm.alltoallv(fold_bufs)
                        } else {
                            // Per-destination encodes are independent; fan them
                            // out on the rank pool. The collective itself stays
                            // on this (the rank's main) thread — see the Comm
                            // threading invariant.
                            let encode_t = comm.trace_start();
                            let encode_one = |(oj, pairs): (usize, &Vec<(u64, u64)>)| -> WireBuf {
                                encode_pairs(pairs, self.owner_vrange(i, oj), codec)
                            };
                            let bufs: Vec<WireBuf> = match pool {
                                Some(pool) => pool.install(|| {
                                    fold_bufs.par_iter().enumerate().map(encode_one).collect()
                                }),
                                None => fold_bufs.iter().enumerate().map(encode_one).collect(),
                            };
                            for (oj, b) in bufs.iter().enumerate() {
                                if oj != row_comm.rank() {
                                    lvl.note(b);
                                }
                            }
                            comm.trace_span(SpanKind::Encode, encode_t, lvl.sieve_hits);
                            let wire = row_comm.alltoallv_wire(bufs);
                            let decode_t = comm.trace_start();
                            let out: Vec<Vec<(u64, u64)>> = match pool {
                                Some(pool) => pool.install(|| {
                                    wire.par_iter().map(|b| decode_pairs(b.bytes())).collect()
                                }),
                                None => wire.iter().map(|b| decode_pairs(b.bytes())).collect(),
                            };
                            let decoded: u64 = out.iter().map(|b| b.len() as u64).sum();
                            comm.trace_span(SpanKind::Decode, decode_t, decoded);
                            out
                        }
                    }
                };
            if codec != Codec::Off {
                codec_levels.push(lvl);
            }
            // Lines 9–11: mask by π̄, update π, form the next frontier.
            let mut next: Vec<VertexId> = Vec::new();
            let mut merged: Vec<(u64, u64)> = folded.into_iter().flatten().collect();
            comm.trace_span(SpanKind::FoldPhase, fold_t, merged.len() as u64);
            let mask_t = comm.trace_start();
            work.fold_received += merged.len() as u64;
            match pool {
                Some(pool) => pool.install(|| merged.par_sort_unstable()),
                None => merged.sort_unstable(),
            }
            // Keep the max parent per vertex: after the sort, the last
            // entry of each group (SelectMax's add).
            let mut k = 0;
            while k < merged.len() {
                let g = merged[k].0;
                let mut best = merged[k].1;
                while k + 1 < merged.len() && merged[k + 1].0 == g {
                    k += 1;
                    best = best.max(merged[k].1);
                }
                k += 1;
                let idx = (g - self.vrange.start) as usize;
                if parents[idx] == UNREACHED {
                    parents[idx] = best as i64;
                    levels[idx] = level;
                    next.push(g);
                }
            }
            comm.trace_span(SpanKind::Mask, mask_t, next.len() as u64);
            // Termination: is the global frontier empty?
            let total = comm.allreduce(next.len() as u64, |a, b| a + b);
            let comm_spent = (comm.comm_wall() + row_comm.comm_wall() + col_comm.comm_wall())
                .saturating_sub(comm_before);
            comm.push_level_timing(LevelTiming {
                level: (level - 1) as u32,
                compute: level_start.elapsed().saturating_sub(comm_spent),
                comm: comm_spent,
                direction: Default::default(),
            });
            comm.trace_span(SpanKind::Level, level_t, frontier.len() as u64);
            if total == 0 {
                comm.trace_enter_level(dmbfs_trace::NO_LEVEL);
                break;
            }
            frontier = next;
            level += 1;
        }

        (levels, parents, level as u32, work, codec_levels)
    }

    /// Vector range owned by `P(i, oj)` under the configured distribution —
    /// the codec range of a fold buffer headed there.
    fn owner_vrange(&self, i: usize, oj: usize) -> Range<u64> {
        match self.cfg.distribution {
            VectorDistribution::TwoD => self.block.map.vector_range(i, oj),
            VectorDistribution::Diagonal => self.block.map.diagonal_range(i, oj),
        }
    }

    /// The fold phase as a `k`-chunk double-buffered pipeline on the
    /// nonblocking row exchange: while chunk `c`'s wire buffers are in
    /// flight, chunk `c + 1` is sieved and encoded, and completed chunks
    /// are decoded as they land. Every rank of the row runs exactly `k`
    /// start/wait pairs per level (collective symmetry with empty chunks).
    ///
    /// Bit-identity with the blocking fold: the SpMSV output lists each
    /// local row at most once per level, so the per-chunk
    /// [`Sieve::test_and_set`] drops exactly the rows the whole-level pass
    /// would; and the decoded chunks concatenate into the same pair
    /// multiset, which the caller's sort + max-parent mask reduces
    /// identically.
    #[allow(clippy::too_many_arguments)]
    fn fold_overlapped(
        &self,
        comm: &Comm,
        row_comm: &Comm,
        entries: &[(u64, u64)],
        pool: Option<&rayon::ThreadPool>,
        k: usize,
        sieve: Option<&Sieve>,
        lvl: &mut LevelCodecStats,
    ) -> Vec<Vec<(u64, u64)>> {
        let (i, _) = self.coords;
        let codec = self.cfg.codec;
        let cols = self.cfg.grid.cols();

        let encode_chunk = |c: usize, lvl: &mut LevelCodecStats| -> Vec<WireBuf> {
            let (lo, hi) = (c * entries.len() / k, (c + 1) * entries.len() / k);
            let mut fold_bufs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); cols];
            for &(r, parent) in &entries[lo..hi] {
                if let Some(s) = sieve {
                    if s.test_and_set(r as usize) {
                        lvl.sieve_hits += 1;
                        continue;
                    }
                }
                let g = self.block.row_range.start + r;
                let (oi, oj) = self.vector_owner(g);
                debug_assert_eq!(oi, i, "fold target must stay in the processor row");
                fold_bufs[oj].push((g, parent));
            }
            let encode_t = comm.trace_start();
            let encode_one = |(oj, pairs): (usize, &Vec<(u64, u64)>)| -> WireBuf {
                encode_pairs(pairs, self.owner_vrange(i, oj), codec)
            };
            let bufs: Vec<WireBuf> = match pool {
                Some(pool) => {
                    pool.install(|| fold_bufs.par_iter().enumerate().map(encode_one).collect())
                }
                None => fold_bufs.iter().enumerate().map(encode_one).collect(),
            };
            for (oj, b) in bufs.iter().enumerate() {
                if oj != row_comm.rank() {
                    lvl.note(b);
                }
            }
            comm.trace_span(SpanKind::Encode, encode_t, lvl.sieve_hits);
            bufs
        };

        let decode_chunk = |wire: Vec<WireBuf>, decoded: &mut Vec<Vec<(u64, u64)>>| {
            let decode_t = comm.trace_start();
            let out: Vec<Vec<(u64, u64)>> = match pool {
                Some(pool) => {
                    pool.install(|| wire.par_iter().map(|b| decode_pairs(b.bytes())).collect())
                }
                None => wire.iter().map(|b| decode_pairs(b.bytes())).collect(),
            };
            let n: u64 = out.iter().map(|b| b.len() as u64).sum();
            comm.trace_span(SpanKind::Decode, decode_t, n);
            decoded.extend(out);
        };

        let mut decoded: Vec<Vec<(u64, u64)>> = Vec::with_capacity(k * cols);
        let mut pending = row_comm.ialltoallv_wire(encode_chunk(0, lvl));
        for c in 1..k {
            let bufs = encode_chunk(c, lvl);
            let wire = pending.wait();
            pending = row_comm.ialltoallv_wire(bufs);
            decode_chunk(wire, &mut decoded);
        }
        let wire = pending.wait();
        decode_chunk(wire, &mut decoded);
        decoded
    }

    /// Line 5: sends each owned frontier entry toward the processor column
    /// that owns its matrix-column chunk. On square grids every entry of
    /// P(i,j) targets P(j,i) — the paper's pairwise exchange; on general
    /// grids this becomes a (sparse) all-to-all.
    fn transpose(&self, comm: &Comm, frontier: &[VertexId]) -> Vec<VertexId> {
        // schedule: replicated
        let grid = self.cfg.grid;
        let (i, j) = self.coords;
        if grid.is_square() {
            // All owned entries live in row chunk i = column chunk i.
            debug_assert!(frontier.iter().all(|&g| self.block.map.col_owner(g) == i));
            let partner = grid.rank_of(j, i);
            comm.sendrecv(partner, frontier.to_vec())
        } else {
            let mut bufs: Vec<Vec<VertexId>> = vec![Vec::new(); comm.size()];
            for &g in frontier {
                let jstar = self.block.map.col_owner(g);
                let x = j % grid.rows();
                bufs[grid.rank_of(x, jstar)].push(g);
            }
            comm.alltoallv(bufs).into_iter().flatten().collect()
        }
    }

    /// Line 6 epilogue: assembles the allgathered pieces into the sorted
    /// sparse frontier vector `f_j`, rebased to block-local columns. Values
    /// carry the (global) vertex id — the candidate parent under the
    /// (select, max) semiring.
    fn assemble_frontier(&self, gathered: Vec<Vec<VertexId>>) -> SparseVector<u64> {
        let base = self.block.col_range.start;
        let mut entries: Vec<(u64, u64)> = gathered
            .into_iter()
            .flatten()
            .map(|g| {
                debug_assert!(self.block.col_range.contains(&g));
                (g - base, g)
            })
            .collect();
        entries.sort_unstable_by_key(|&(c, _)| c);
        entries.dedup_by_key(|e| e.0);
        SparseVector::from_sorted(self.block.ncols(), entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use crate::validate::validate_bfs;
    use dmbfs_comm::Pattern;
    use dmbfs_graph::gen::{grid2d, path, rmat, RmatConfig};
    use dmbfs_graph::{CsrGraph, EdgeList};

    fn rmat_graph(scale: u32, seed: u64) -> CsrGraph {
        let mut el = rmat(&RmatConfig::graph500(scale, seed));
        el.canonicalize_undirected();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn flat_square_matches_serial() {
        let g = rmat_graph(8, 11);
        let expected = serial_bfs(&g, 0);
        for grid in [Grid2D::new(1, 1), Grid2D::new(2, 2), Grid2D::new(3, 3)] {
            let out = bfs2d(&g, 0, &Bfs2dConfig::flat(grid));
            assert_eq!(out.levels, expected.levels, "grid {grid:?}");
            validate_bfs(&g, 0, &out.parents, &out.levels).unwrap();
        }
    }

    #[test]
    fn flat_rectangular_matches_serial() {
        let g = rmat_graph(8, 13);
        let expected = serial_bfs(&g, 2);
        for grid in [
            Grid2D::new(2, 3),
            Grid2D::new(3, 2),
            Grid2D::new(1, 4),
            Grid2D::new(4, 1),
        ] {
            let out = bfs2d(&g, 2, &Bfs2dConfig::flat(grid));
            assert_eq!(out.levels, expected.levels, "grid {grid:?}");
            validate_bfs(&g, 2, &out.parents, &out.levels).unwrap();
        }
    }

    #[test]
    fn hybrid_matches_serial() {
        let g = rmat_graph(8, 15);
        let expected = serial_bfs(&g, 5);
        let out = bfs2d(&g, 5, &Bfs2dConfig::hybrid(Grid2D::new(2, 2), 2));
        assert_eq!(out.levels, expected.levels);
        validate_bfs(&g, 5, &out.parents, &out.levels).unwrap();
    }

    #[test]
    fn diagonal_distribution_matches_serial() {
        let g = rmat_graph(8, 17);
        let expected = serial_bfs(&g, 1);
        let cfg = Bfs2dConfig {
            distribution: VectorDistribution::Diagonal,
            ..Bfs2dConfig::flat(Grid2D::new(3, 3))
        };
        let out = bfs2d(&g, 1, &cfg);
        assert_eq!(out.levels, expected.levels);
        validate_bfs(&g, 1, &out.parents, &out.levels).unwrap();
    }

    #[test]
    fn all_kernels_agree() {
        let g = rmat_graph(7, 19);
        let expected = serial_bfs(&g, 0);
        for kernel in [MergeKernel::Spa, MergeKernel::Heap, MergeKernel::Auto] {
            let cfg = Bfs2dConfig {
                kernel,
                ..Bfs2dConfig::flat(Grid2D::new(2, 2))
            };
            let out = bfs2d(&g, 0, &cfg);
            assert_eq!(out.levels, expected.levels, "kernel {kernel:?}");
        }
    }

    #[test]
    fn high_diameter_path_works() {
        let g = CsrGraph::from_edge_list(&path(30));
        let out = bfs2d(&g, 0, &Bfs2dConfig::flat(Grid2D::new(2, 2)));
        let expected: Vec<i64> = (0..30).collect();
        assert_eq!(out.levels, expected);
    }

    #[test]
    fn disconnected_graph_terminates() {
        let el = EdgeList::new(9, vec![(0, 1), (1, 0), (7, 8), (8, 7)]);
        let g = CsrGraph::from_edge_list(&el);
        let out = bfs2d(&g, 0, &Bfs2dConfig::flat(Grid2D::new(2, 2)));
        assert_eq!(out.num_reached(), 2);
        assert_eq!(out.levels[7], UNREACHED);
    }

    #[test]
    fn grid_graph_source_anywhere() {
        let g = CsrGraph::from_edge_list(&grid2d(5, 6));
        for source in [0u64, 7, 29] {
            let expected = serial_bfs(&g, source);
            let out = bfs2d(&g, source, &Bfs2dConfig::flat(Grid2D::new(2, 3)));
            assert_eq!(out.levels, expected.levels, "source {source}");
        }
    }

    #[test]
    fn run_records_expand_and_fold_patterns() {
        let g = rmat_graph(8, 23);
        let run = bfs2d_run(&g, 0, &Bfs2dConfig::flat(Grid2D::new(2, 2)));
        assert!(run.num_levels >= 2);
        for stats in &run.per_rank_stats {
            let ag = stats
                .events
                .iter()
                .filter(|e| e.pattern == Pattern::Allgatherv)
                .count() as u32;
            let a2a = stats
                .events
                .iter()
                .filter(|e| e.pattern == Pattern::Alltoallv)
                .count() as u32;
            let p2p = stats
                .events
                .iter()
                .filter(|e| e.pattern == Pattern::PointToPoint)
                .count() as u32;
            assert_eq!(ag, run.num_levels);
            assert_eq!(a2a, run.num_levels);
            assert_eq!(p2p, run.num_levels);
            // Expand/fold happen in √p-sized groups, not world-sized ones.
            for e in &stats.events {
                if matches!(e.pattern, Pattern::Allgatherv | Pattern::Alltoallv) {
                    assert_eq!(e.group_size, 2);
                }
            }
        }
    }

    #[test]
    fn overlapped_fold_is_bit_identical_to_blocking() {
        let g = rmat_graph(9, 17);
        let baseline = bfs2d(&g, 1, &Bfs2dConfig::flat(Grid2D::new(2, 2)));
        for k in [1usize, 2, 4] {
            let cfg =
                Bfs2dConfig::flat(Grid2D::new(2, 2)).with_overlap(std::num::NonZeroUsize::new(k));
            let out = bfs2d(&g, 1, &cfg);
            assert_eq!(out.parents, baseline.parents, "k = {k}");
            assert_eq!(out.levels, baseline.levels, "k = {k}");
        }
        // Overlap composes with the hybrid pool and the diagonal
        // distribution.
        let diag = bfs2d(
            &g,
            1,
            &Bfs2dConfig {
                distribution: VectorDistribution::Diagonal,
                ..Bfs2dConfig::hybrid(Grid2D::new(2, 2), 2)
            }
            .with_overlap(std::num::NonZeroUsize::new(2)),
        );
        assert_eq!(diag.levels, baseline.levels);
    }

    #[test]
    fn overlapped_fold_traces_exchange_pairs() {
        let g = rmat_graph(8, 23);
        let k = 2u32;
        let run = bfs2d_run(
            &g,
            0,
            &Bfs2dConfig::flat(Grid2D::new(2, 2))
                .with_overlap(std::num::NonZeroUsize::new(k as usize))
                .with_trace(true),
        );
        for t in &run.per_rank_trace {
            let count = |kind| t.spans.iter().filter(|s| s.kind == kind).count() as u32;
            assert_eq!(count(SpanKind::ExchangeStart), k * run.num_levels);
            assert_eq!(count(SpanKind::ExchangeWait), k * run.num_levels);
        }
    }

    #[test]
    fn expand_algorithms_agree() {
        let g = rmat_graph(8, 33);
        let expected = serial_bfs(&g, 0);
        for (grid, expand) in [
            (Grid2D::new(4, 2), ExpandAlgorithm::Ring),
            (Grid2D::new(4, 2), ExpandAlgorithm::Doubling),
            (Grid2D::new(3, 3), ExpandAlgorithm::Ring),
            (Grid2D::new(3, 3), ExpandAlgorithm::Doubling), // falls back
        ] {
            let cfg = Bfs2dConfig {
                expand,
                ..Bfs2dConfig::flat(grid)
            };
            let out = bfs2d(&g, 0, &cfg);
            assert_eq!(out.levels, expected.levels, "{grid:?} {expand:?}");
            validate_bfs(&g, 0, &out.parents, &out.levels).unwrap();
        }
    }

    #[test]
    fn expand_algorithms_have_distinct_event_schedules() {
        let g = rmat_graph(8, 35);
        let mk = |expand| {
            let cfg = Bfs2dConfig {
                expand,
                ..Bfs2dConfig::flat(Grid2D::new(4, 4))
            };
            bfs2d_run(&g, 0, &cfg)
        };
        let board = mk(ExpandAlgorithm::Board);
        let ring = mk(ExpandAlgorithm::Ring);
        assert_eq!(board.output.levels, ring.output.levels);
        // Ring replaces each Allgatherv with p2p rounds: more calls.
        let calls = |run: &Dist2dRun| run.per_rank_stats[0].num_calls();
        assert!(calls(&ring) > calls(&board));
        let ag = |run: &Dist2dRun| {
            run.per_rank_stats[0]
                .events
                .iter()
                .filter(|e| e.pattern == Pattern::Allgatherv)
                .count()
        };
        assert_eq!(ag(&ring), 0);
        assert_eq!(ag(&board) as u32, board.num_levels);
    }

    #[test]
    fn traced_run_captures_phases_on_all_communicators() {
        let g = rmat_graph(8, 23);
        let run = bfs2d_run(
            &g,
            0,
            &Bfs2dConfig::flat(Grid2D::new(2, 2)).with_trace(true),
        );
        assert_eq!(run.per_rank_trace.len(), 4);
        use dmbfs_trace::{CollectiveTag, SpanKind};
        for (rank, t) in run.per_rank_trace.iter().enumerate() {
            assert_eq!(t.rank, rank);
            let count = |k| t.spans.iter().filter(|s| s.kind == k).count() as u32;
            assert_eq!(count(SpanKind::Search), 1);
            assert_eq!(count(SpanKind::Level), run.num_levels);
            assert_eq!(count(SpanKind::Transpose), run.num_levels);
            assert_eq!(count(SpanKind::ExpandPhase), run.num_levels);
            assert_eq!(count(SpanKind::SpMSV), run.num_levels);
            assert_eq!(count(SpanKind::FoldPhase), run.num_levels);
            assert_eq!(count(SpanKind::Mask), run.num_levels);
            // Row/column collectives land in this rank's trace with the
            // sub-communicator's group size (√p = 2), tagged by level.
            let expand_collectives: Vec<_> = t
                .spans
                .iter()
                .filter(|s| {
                    s.kind == SpanKind::Collective && s.pattern == CollectiveTag::Allgatherv
                })
                .collect();
            assert_eq!(expand_collectives.len() as u32, run.num_levels);
            for s in &expand_collectives {
                assert_eq!(s.detail, 2, "expand runs on the column communicator");
                assert!(s.level >= 0, "collectives are tagged with their level");
            }
            // The setup collectives (splits, warm-up barrier) were cleared.
            assert!(t.spans.iter().all(|s| s.kind != SpanKind::Collective
                || s.level >= 0
                || s.pattern == CollectiveTag::Barrier));
        }
        // Untraced runs return placeholder traces with no spans.
        let run = bfs2d_run(&g, 0, &Bfs2dConfig::flat(Grid2D::new(2, 2)));
        assert!(run.per_rank_trace.iter().all(|t| t.spans.is_empty()));
    }

    #[test]
    fn single_cell_grid_equals_serial() {
        let g = rmat_graph(7, 29);
        let out = bfs2d(&g, 3, &Bfs2dConfig::flat(Grid2D::new(1, 1)));
        let expected = serial_bfs(&g, 3);
        assert_eq!(out.levels, expected.levels);
    }
}
