//! Betweenness centrality — §1's "identifying and ranking important
//! entities", computed with the Brandes algorithm whose inner kernel is
//! exactly the level-synchronous BFS this repository is about. (Bader &
//! Madduri's MTA-2 work, the paper's \[4\], paired the same two kernels.)
//!
//! Brandes (2001): for each source `s`, a BFS records shortest-path counts
//! `σ` and the level structure; a reverse sweep accumulates dependencies
//! `δ(v) = Σ_{w : v ∈ pred(w)} (σ_v/σ_w)(1 + δ(w))`. Unnormalized scores
//! sum contributions over *ordered* source pairs; for undirected graphs
//! callers conventionally halve them (we report raw sums and provide
//! [`normalized`]).
//!
//! [`parallel_betweenness`] distributes sources across rayon workers, each
//! with private σ/δ state (coarse-grained source parallelism — the classic
//! strategy, matching §2.2's observation that x86 multicores favor
//! coarse-grained load balancing). [`approx_betweenness`] samples sources
//! (Bader et al.'s estimator) for large graphs.

use dmbfs_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Per-source Brandes accumulation: adds source `s`'s dependencies into
/// `scores`.
fn accumulate_from_source(g: &CsrGraph, s: VertexId, scores: &mut [f64]) {
    let n = g.num_vertices() as usize;
    let mut sigma = vec![0.0f64; n]; // shortest-path counts
    let mut dist = vec![-1i64; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n); // BFS visit order
    let mut frontier: Vec<VertexId> = vec![s];
    sigma[s as usize] = 1.0;
    dist[s as usize] = 0;
    let mut level = 0i64;
    while !frontier.is_empty() {
        order.extend_from_slice(&frontier);
        let mut next = Vec::new();
        level += 1;
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if dist[v as usize] < 0 {
                    dist[v as usize] = level;
                    next.push(v);
                }
                if dist[v as usize] == level {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        frontier = next;
    }
    // Reverse sweep: accumulate dependencies from the deepest level up.
    let mut delta = vec![0.0f64; n];
    for &w in order.iter().rev() {
        for &v in g.neighbors(w) {
            if dist[v as usize] == dist[w as usize] - 1 {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
        }
        if w != s {
            scores[w as usize] += delta[w as usize];
        }
    }
}

/// Exact betweenness over all sources, serially.
pub fn serial_betweenness(g: &CsrGraph) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let mut scores = vec![0.0; n];
    for s in 0..n as u64 {
        accumulate_from_source(g, s, &mut scores);
    }
    scores
}

/// Exact betweenness with sources distributed across rayon workers; each
/// worker holds private BFS state and the per-source score vectors are
/// reduced at the end.
pub fn parallel_betweenness(g: &CsrGraph) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    (0..n as u64)
        .into_par_iter()
        .fold(
            || vec![0.0f64; n],
            |mut scores, s| {
                accumulate_from_source(g, s, &mut scores);
                scores
            },
        )
        .reduce(
            || vec![0.0f64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Sampled approximation: accumulates `k` random sources and extrapolates
/// by `n / k`. Deterministic in `seed`.
pub fn approx_betweenness(g: &CsrGraph, k: usize, seed: u64) -> Vec<f64> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let n = g.num_vertices() as usize;
    let k = k.clamp(1, n);
    let mut sources: Vec<VertexId> = (0..n as u64).collect();
    let mut rng = rand_xoshiro::Xoshiro256PlusPlus::seed_from_u64(seed);
    sources.shuffle(&mut rng);
    sources.truncate(k);
    let mut scores = sources
        .into_par_iter()
        .fold(
            || vec![0.0f64; n],
            |mut scores, s| {
                accumulate_from_source(g, s, &mut scores);
                scores
            },
        )
        .reduce(
            || vec![0.0f64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
    let scale = n as f64 / k as f64;
    for v in &mut scores {
        *v *= scale;
    }
    scores
}

/// Conventional normalization for undirected graphs: halve the ordered-pair
/// sums and divide by `(n−1)(n−2)` (the maximum possible).
pub fn normalized(scores: &[f64]) -> Vec<f64> {
    let n = scores.len() as f64;
    let denom = (n - 1.0) * (n - 2.0);
    if denom <= 0.0 {
        return vec![0.0; scores.len()];
    }
    scores.iter().map(|&s| s / denom).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbfs_graph::gen::{grid2d, path, ring, rmat, RmatConfig};
    use dmbfs_graph::EdgeList;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    /// Brute-force reference: count shortest paths by BFS from every
    /// source and enumerate paths via dynamic programming.
    fn brute_force(g: &CsrGraph) -> Vec<f64> {
        // Uses the same math but an independently-written double loop over
        // (s, t) pairs with explicit path counting.
        let n = g.num_vertices() as usize;
        let mut scores = vec![0.0; n];
        for s in 0..n as u64 {
            // BFS for dist + sigma.
            let mut dist = vec![i64::MAX; n];
            let mut sigma = vec![0.0f64; n];
            dist[s as usize] = 0;
            sigma[s as usize] = 1.0;
            let mut frontier = vec![s];
            let mut d = 0;
            while !frontier.is_empty() {
                d += 1;
                let mut next = Vec::new();
                for &u in &frontier {
                    for &v in g.neighbors(u) {
                        if dist[v as usize] == i64::MAX {
                            dist[v as usize] = d;
                            next.push(v);
                        }
                        if dist[v as usize] == d {
                            sigma[v as usize] += sigma[u as usize];
                        }
                    }
                }
                frontier = next;
            }
            // For every target t, count paths through each v via
            // sigma[v] * sigma_rev[v] / sigma[t] where sigma_rev counts
            // paths from v to t — recompute per t by backward BFS counts.
            for t in 0..n as u64 {
                if t == s || dist[t as usize] == i64::MAX {
                    continue;
                }
                // paths from v to t along shortest s-paths:
                // count via reverse DP ordered by decreasing distance.
                let mut through = vec![0.0f64; n];
                through[t as usize] = 1.0;
                let mut vertices: Vec<VertexId> = (0..n as u64)
                    .filter(|&v| {
                        dist[v as usize] != i64::MAX && dist[v as usize] <= dist[t as usize]
                    })
                    .collect();
                vertices.sort_by_key(|&v| std::cmp::Reverse(dist[v as usize]));
                for &w in &vertices {
                    if w == t {
                        continue;
                    }
                    for &x in g.neighbors(w) {
                        if dist[x as usize] == dist[w as usize] + 1 {
                            through[w as usize] += through[x as usize];
                        }
                    }
                }
                for v in 0..n as u64 {
                    if v != s
                        && v != t
                        && dist[v as usize] < dist[t as usize]
                        && dist[v as usize] > 0
                    {
                        scores[v as usize] +=
                            sigma[v as usize] * through[v as usize] / sigma[t as usize];
                    }
                }
            }
        }
        scores
    }

    #[test]
    fn path_graph_closed_form() {
        // Unnormalized over ordered pairs: BC(i) = 2 · i · (n−1−i).
        let n = 7u64;
        let g = CsrGraph::from_edge_list(&path(n));
        let scores = serial_betweenness(&g);
        for i in 0..n {
            let expected = 2.0 * i as f64 * (n - 1 - i) as f64;
            assert!(
                (scores[i as usize] - expected).abs() < 1e-9,
                "vertex {i}: {} vs {expected}",
                scores[i as usize]
            );
        }
    }

    #[test]
    fn star_center_takes_everything() {
        let mut edges = Vec::new();
        for v in 1..=5u64 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        let g = CsrGraph::from_edge_list(&EdgeList::new(6, edges));
        let scores = serial_betweenness(&g);
        assert!((scores[0] - 20.0).abs() < 1e-9); // (n−1)(n−2) = 20
        for score in scores.iter().take(6).skip(1) {
            assert!(score.abs() < 1e-12);
        }
    }

    #[test]
    fn ring_is_uniform() {
        let g = CsrGraph::from_edge_list(&ring(9));
        let scores = serial_betweenness(&g);
        for v in 1..9 {
            assert!((scores[v] - scores[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut el = rmat(&RmatConfig::graph500(7, 5));
        el.canonicalize_undirected();
        let g = CsrGraph::from_edge_list(&el);
        assert!(close(
            &parallel_betweenness(&g),
            &serial_betweenness(&g),
            1e-7
        ));
    }

    #[test]
    fn brandes_matches_brute_force() {
        for el in [grid2d(3, 4), path(6), ring(7)] {
            let g = CsrGraph::from_edge_list(&el);
            let fast = serial_betweenness(&g);
            let slow = brute_force(&g);
            assert!(close(&fast, &slow, 1e-7), "{:?} vs {:?}", fast, slow);
        }
    }

    #[test]
    fn brandes_matches_brute_force_on_random_graph() {
        let mut el = rmat(&RmatConfig::graph500(5, 9));
        el.canonicalize_undirected();
        let g = CsrGraph::from_edge_list(&el);
        assert!(close(&serial_betweenness(&g), &brute_force(&g), 1e-6));
    }

    #[test]
    fn full_sample_approximation_is_exact() {
        let g = CsrGraph::from_edge_list(&grid2d(4, 4));
        let exact = serial_betweenness(&g);
        let approx = approx_betweenness(&g, 16, 3);
        assert!(close(&exact, &approx, 1e-9));
    }

    #[test]
    fn sampled_approximation_correlates() {
        let mut el = rmat(&RmatConfig::graph500(8, 11));
        el.canonicalize_undirected();
        let g = CsrGraph::from_edge_list(&el);
        let exact = serial_betweenness(&g);
        let approx = approx_betweenness(&g, 64, 5);
        // Top exact vertex must rank highly in the approximation.
        let top_exact = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let mut by_approx: Vec<usize> = (0..exact.len()).collect();
        by_approx.sort_by(|&a, &b| approx[b].total_cmp(&approx[a]));
        let rank = by_approx.iter().position(|&v| v == top_exact).unwrap();
        assert!(rank < exact.len() / 10, "top vertex ranked {rank}");
    }

    #[test]
    fn normalization_bounds_scores() {
        let g = CsrGraph::from_edge_list(&grid2d(4, 4));
        let norm = normalized(&serial_betweenness(&g));
        assert!(norm.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn disconnected_components_are_independent() {
        let el = EdgeList::new(6, vec![(0, 1), (1, 0), (1, 2), (2, 1), (4, 5), (5, 4)]);
        let g = CsrGraph::from_edge_list(&el);
        let scores = serial_betweenness(&g);
        assert!((scores[1] - 2.0).abs() < 1e-9); // middle of the 3-path
        assert!(scores[4].abs() < 1e-12);
        assert!(scores[5].abs() < 1e-12);
    }
}
