//! 1D vertex-partitioned distributed BFS — Algorithm 2 of the paper.
//!
//! Each process owns `n/p` vertices and their outgoing edges (§3.1). A
//! level expands by enumerating the adjacencies of the local frontier into
//! per-destination buffers (thread-parallel with thread-local buffers in
//! the hybrid variant), exchanging them with a single `Alltoallv`, and
//! having each owner claim the newly visited vertices. "The key aspects to
//! note [...] is the extraneous computation (and communication) introduced
//! due to the distributed graph scenario: creating the message buffers of
//! cumulative size O(m) and the All-to-all communication step."

use crate::direction::DirectionConfig;
use crate::distribute::{extract_1d, Local1d};
use crate::frontier_codec::{
    decode_pairs, decode_set, encode_pairs, encode_set, merge_level_stats, Codec, LevelCodecStats,
    Sieve,
};
use crate::{BfsOutput, UNREACHED};
use dmbfs_comm::{Comm, CommStats, LevelDirection, LevelTiming, WireBuf};
use dmbfs_graph::{CsrGraph, VertexId};
use dmbfs_runtime::{run_ranks, scatter_block, DirectionMode};
use dmbfs_trace::{RankTrace, SpanKind};
use rayon::prelude::*;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Instant;

/// Configuration of a 1D run — since the runtime refactor this *is* the
/// shared [`dmbfs_runtime::RunConfig`]; the historical name stays as an
/// alias because the 1D driver was its first user.
pub use dmbfs_runtime::RunConfig as Bfs1dConfig;

/// Everything a 1D run produces: the BFS tree plus per-rank measurements.
#[derive(Clone, Debug)]
pub struct Dist1dRun {
    /// Assembled global result.
    pub output: BfsOutput,
    /// Per-rank communication event streams (index = rank).
    pub per_rank_stats: Vec<CommStats>,
    /// Wall seconds of the timed BFS region (barrier-to-barrier, excluding
    /// graph distribution), as measured on rank 0.
    pub seconds: f64,
    /// Number of BFS levels executed.
    pub num_levels: u32,
    /// Per-level codec telemetry, merged across ranks (empty under
    /// [`Codec::Off`]).
    pub codec_levels: Vec<LevelCodecStats>,
    /// Per-rank span traces (index = rank); empty spans unless
    /// [`Bfs1dConfig::trace`] was set.
    pub per_rank_trace: Vec<RankTrace>,
    /// Per-rank collective-fingerprint sequences (index = rank); empty
    /// unless [`Bfs1dConfig::schedule_capture`] was set.
    pub per_rank_schedule: Vec<Vec<&'static str>>,
}

impl Dist1dRun {
    /// The per-level direction schedule, read from rank 0's level timings.
    /// Identical on every rank: the decision is a pure function of
    /// allreduced global counts.
    pub fn level_directions(&self) -> Vec<LevelDirection> {
        self.per_rank_stats
            .first()
            .map(|s| s.level_timings.iter().map(|t| t.direction).collect())
            .unwrap_or_default()
    }
}

/// Runs the 1D algorithm and returns the assembled result only.
///
/// # Examples
/// ```
/// use dmbfs_bfs::one_d::{bfs1d, Bfs1dConfig};
/// use dmbfs_bfs::serial::serial_bfs;
/// use dmbfs_graph::gen::grid2d;
/// use dmbfs_graph::CsrGraph;
///
/// let g = CsrGraph::from_edge_list(&grid2d(4, 4));
/// let distributed = bfs1d(&g, 0, &Bfs1dConfig::flat(4));
/// assert_eq!(distributed.levels(), serial_bfs(&g, 0).levels());
/// ```
pub fn bfs1d(g: &CsrGraph, source: VertexId, cfg: &Bfs1dConfig) -> BfsOutput {
    bfs1d_run(g, source, cfg).output
}

/// Runs the 1D algorithm with full instrumentation.
pub fn bfs1d_run(g: &CsrGraph, source: VertexId, cfg: &Bfs1dConfig) -> Dist1dRun {
    assert!(cfg.ranks > 0);
    assert!((source) < g.num_vertices(), "source out of range");
    let ranks = cfg.ranks;
    let codec = cfg.codec;
    let sieve = cfg.sieve;
    let overlap = cfg.overlap;
    let direction = cfg.direction;

    let run = run_ranks(cfg, |ctx| {
        let local = extract_1d(g, ranks, ctx.rank());
        let (levels, parents, num_levels, codec_levels) = ctx.timed(source, || {
            rank_bfs(
                ctx.comm(),
                &local,
                source,
                ctx.pool(),
                codec,
                sieve,
                overlap,
                direction,
            )
        });
        (local.range.start, levels, parents, num_levels, codec_levels)
    });

    let mut output = BfsOutput::unreached(source, g.num_vertices() as usize);
    let mut per_rank_codec = Vec::with_capacity(ranks);
    let mut num_levels = 0;
    for (start, levels, parents, rank_levels, codec_levels) in run.per_rank {
        scatter_block(&mut output.levels, start, &levels);
        scatter_block(&mut output.parents, start, &parents);
        per_rank_codec.push(codec_levels);
        num_levels = num_levels.max(rank_levels);
    }
    Dist1dRun {
        output,
        per_rank_stats: run.per_rank_stats,
        seconds: run.seconds,
        num_levels,
        codec_levels: merge_level_stats(&per_rank_codec),
        per_rank_trace: run.per_rank_trace,
        per_rank_schedule: run.per_rank_schedule,
    }
}

/// The per-rank level loop of Algorithm 2, or — under
/// [`DirectionMode::Hybrid`] / [`DirectionMode::BottomUp`] — the
/// direction-optimizing variant that swaps the frontier exchange for a
/// bitmap broadcast plus owner-side scan on bottom-up levels.
#[allow(clippy::too_many_arguments)]
fn rank_bfs(
    comm: &Comm,
    local: &Local1d,
    source: VertexId,
    pool: Option<&rayon::ThreadPool>,
    codec: Codec,
    sieve: bool,
    overlap: Option<NonZeroUsize>,
    direction: DirectionMode,
) -> (Vec<i64>, Vec<i64>, u32, Vec<LevelCodecStats>) {
    let nloc = local.count();
    let levels: Vec<AtomicI64> = (0..nloc).map(|_| AtomicI64::new(UNREACHED)).collect();
    let parents: Vec<AtomicI64> = (0..nloc).map(|_| AtomicI64::new(UNREACHED)).collect();

    // Lines 4–7: the owner seeds the frontier.
    let mut frontier: Vec<VertexId> = Vec::new();
    if local.block.owner(source) == comm.rank() {
        let s = local.to_local(source);
        levels[s].store(0, Ordering::Relaxed);
        parents[s].store(source as i64, Ordering::Relaxed);
        frontier.push(source);
    }

    // One bit per global vertex: a vertex's owner is fixed, so this also
    // keys (vertex, destination) pairs. Only allocated when sieving.
    let visited_sieve =
        (sieve && codec != Codec::Off).then(|| Sieve::new(local.block.domain() as usize));
    let mut codec_levels: Vec<LevelCodecStats> = Vec::new();

    if direction != DirectionMode::TopDown {
        let (num_levels, codec_levels) = hybrid_loop(
            comm,
            local,
            frontier,
            pool,
            codec,
            visited_sieve.as_ref(),
            overlap,
            direction,
            &levels,
            &parents,
        );
        return (
            levels.into_iter().map(AtomicI64::into_inner).collect(),
            parents.into_iter().map(AtomicI64::into_inner).collect(),
            num_levels,
            codec_levels,
        );
    }

    let mut level: i64 = 1;
    loop {
        comm.trace_enter_level(level - 1);
        let level_t = comm.trace_start();
        let level_start = Instant::now();
        let comm_before = comm.comm_wall();
        let next = top_down_level(
            comm,
            local,
            &frontier,
            codec,
            visited_sieve.as_ref(),
            overlap,
            level,
            pool,
            &levels,
            &parents,
            &mut codec_levels,
        );
        // Global termination test.
        let global_next = comm.allreduce(next.len() as u64, |a, b| a + b);
        // Attribute the level's wall time: everything outside collectives
        // is local compute (pack, codec work, unpack).
        let comm_spent = comm.comm_wall() - comm_before;
        comm.push_level_timing(LevelTiming {
            level: (level - 1) as u32,
            compute: level_start.elapsed().saturating_sub(comm_spent),
            comm: comm_spent,
            direction: LevelDirection::TopDown,
        });
        comm.trace_span(SpanKind::Level, level_t, frontier.len() as u64);
        if global_next == 0 {
            comm.trace_enter_level(dmbfs_trace::NO_LEVEL);
            break;
        }
        frontier = next;
        level += 1;
    }

    (
        levels.into_iter().map(AtomicI64::into_inner).collect(),
        parents.into_iter().map(AtomicI64::into_inner).collect(),
        level as u32,
        codec_levels,
    )
}

/// One top-down level: pack the frontier's adjacencies by owner, exchange
/// (blocking or through the overlap pipeline), and let owners claim the
/// newly visited vertices. Returns the local slice of the next frontier.
#[allow(clippy::too_many_arguments)]
fn top_down_level(
    comm: &Comm,
    local: &Local1d,
    frontier: &[VertexId],
    codec: Codec,
    visited_sieve: Option<&Sieve>,
    overlap: Option<NonZeroUsize>,
    level: i64,
    pool: Option<&rayon::ThreadPool>,
    levels: &[AtomicI64],
    parents: &[AtomicI64],
    codec_levels: &mut Vec<LevelCodecStats>,
) -> Vec<VertexId> {
    let p = comm.size();
    match overlap.filter(|_| codec != Codec::Off) {
        // The chunked double-buffered pipeline: pack + sieve + encode
        // chunk c+1 while chunk c is in flight on the nonblocking
        // exchange, decoding/unpacking completed chunks as they land.
        // `Codec::Off` has no wire buffers to pipeline, so it always
        // takes the blocking path below.
        Some(k) => {
            let (next, stats) = overlapped_level(
                comm,
                local,
                frontier,
                codec,
                visited_sieve,
                level,
                pool,
                k.get(),
                levels,
                parents,
            );
            codec_levels.push(stats);
            next
        }
        None => {
            // Lines 13–19: enumerate adjacencies into per-destination
            // buffers.
            let pack_t = comm.trace_start();
            let send = match pool {
                Some(pool) => {
                    let batch_t = comm.trace_start();
                    let send = pool.install(|| pack_parallel(local, frontier, p));
                    comm.trace_span(SpanKind::TaskBatch, batch_t, frontier.len() as u64);
                    send
                }
                None => pack_serial(local, frontier, p),
            };
            comm.trace_span(SpanKind::Pack, pack_t, frontier.len() as u64);
            // Line 21: the all-to-all exchange of (target, parent)
            // pairs — either the plain typed collective or the codec
            // pipeline (dedup → sieve → encode → exchange → decode).
            let exchange_t = comm.trace_start();
            let recv = if codec == Codec::Off {
                comm.alltoallv(send)
            } else {
                let (bufs, stats) =
                    encode_exchange(comm, local, send, codec, visited_sieve, level, pool);
                codec_levels.push(stats);
                bufs
            };
            let received: u64 = recv.iter().map(|b| b.len() as u64).sum();
            comm.trace_span(SpanKind::Exchange, exchange_t, received);
            // Lines 23–28: owners claim newly visited vertices.
            let unpack_t = comm.trace_start();
            let next = match pool {
                Some(pool) => {
                    let batch_t = comm.trace_start();
                    let next =
                        pool.install(|| unpack_parallel(local, &recv, levels, parents, level));
                    comm.trace_span(SpanKind::TaskBatch, batch_t, received);
                    next
                }
                None => unpack_serial(local, &recv, levels, parents, level),
            };
            comm.trace_span(SpanKind::Unpack, unpack_t, next.len() as u64);
            next
        }
    }
}

/// The direction-optimizing level loop (Buluç–Beamer–Madduri,
/// arXiv:1705.04590 §4 adapted to the 1D partition): each level runs
/// either the top-down exchange of Algorithm 2 or a distributed bottom-up
/// step — the global frontier is allgathered as a bitmap and every
/// locally-owned unvisited vertex probes its in-neighbors against it,
/// claiming a parent on the first hit.
///
/// The αβ switch replicates `crate::direction` exactly, but every input
/// (frontier size, frontier out-edges, edges examined, explored edges) is
/// a *global* count carried by one `[u64; 3]` allreduce per level, so all
/// ranks compute the identical decision and the collective schedule stays
/// symmetric with no extra broadcast. Level arrays therefore match the
/// serial oracle; bottom-up parents are the first hit in CSR adjacency
/// order, deterministic across rank counts.
#[allow(clippy::too_many_arguments)]
fn hybrid_loop(
    comm: &Comm,
    local: &Local1d,
    mut frontier: Vec<VertexId>,
    pool: Option<&rayon::ThreadPool>,
    codec: Codec,
    visited_sieve: Option<&Sieve>,
    overlap: Option<NonZeroUsize>,
    direction: DirectionMode,
    levels: &[AtomicI64],
    parents: &[AtomicI64],
) -> (u32, Vec<LevelCodecStats>) {
    let dir_cfg = DirectionConfig::default();
    // The graph's global vertex count is identical on every rank even
    // though each rank holds a different block of it.
    // schedule: replicated
    let n_global = local.block.domain();
    let mut codec_levels: Vec<LevelCodecStats> = Vec::new();
    let add3 = |a: [u64; 3], b: [u64; 3]| [a[0] + b[0], a[1] + b[1], a[2] + b[2]];
    let out_edges =
        |f: &[VertexId]| -> u64 { f.iter().map(|&u| local.neighbors(u).len() as u64).sum() };

    // Seed the global heuristic state: one allreduce folds the edge total
    // and the source frontier's size/out-edges together.
    let [total_edges, mut gfrontier, mut gfrontier_edges] = comm.allreduce(
        [
            local.num_local_edges() as u64,
            frontier.len() as u64,
            out_edges(&frontier),
        ],
        add3,
    );
    let mut explored_edges = gfrontier_edges;
    let mut reached = gfrontier;
    let mut prev_gfrontier = 0u64;
    let mut bottom_up = false;
    let mut alpha_eff = dir_cfg.alpha.max(1);
    let mut level: i64 = 1;
    loop {
        comm.trace_enter_level(level - 1);
        let level_t = comm.trace_start();
        let level_start = Instant::now();
        let comm_before = comm.comm_wall();
        // The per-level decision — identical on every rank because all of
        // its inputs are allreduced global counts (see `crate::direction`
        // for the heuristic's rationale).
        match direction {
            DirectionMode::BottomUp => bottom_up = true,
            DirectionMode::Hybrid => {
                let unexplored = total_edges.saturating_sub(explored_edges);
                let growing = gfrontier > prev_gfrontier;
                let unvisited = n_global - reached;
                if !bottom_up
                    && dir_cfg.alpha > 0
                    && growing
                    && gfrontier_edges > unexplored / alpha_eff
                    && unvisited < gfrontier_edges
                {
                    bottom_up = true;
                } else if bottom_up && dir_cfg.beta > 0 && gfrontier * dir_cfg.beta < n_global {
                    bottom_up = false;
                }
            }
            DirectionMode::TopDown => unreachable!("handled by the plain loop"),
        }
        prev_gfrontier = gfrontier;
        let dir = if bottom_up {
            LevelDirection::BottomUp
        } else {
            LevelDirection::TopDown
        };
        let dir_t = comm.trace_start();
        comm.trace_span(SpanKind::Direction, dir_t, dir.tag());

        let (next, examined_local) = if bottom_up {
            let (next, examined) = bottom_up_level(
                comm,
                local,
                &mut frontier,
                level,
                pool,
                levels,
                parents,
                &mut codec_levels,
            );
            (next, examined)
        } else {
            // A top-down level examines every out-edge of the frontier —
            // exactly this rank's packed adjacencies.
            let examined = out_edges(&frontier);
            let next = top_down_level(
                comm,
                local,
                &frontier,
                codec,
                visited_sieve,
                overlap,
                level,
                pool,
                levels,
                parents,
                &mut codec_levels,
            );
            (next, examined)
        };

        // Termination test + heuristic refresh in one collective: the next
        // frontier's global size and out-edges, and the level's globally
        // examined edges (for the adaptive backoff).
        let [gnext, gnext_edges, gexamined] =
            comm.allreduce([next.len() as u64, out_edges(&next), examined_local], add3);
        explored_edges += gnext_edges;
        reached += gnext;
        if bottom_up && gexamined > gfrontier_edges {
            // The round lost (same rule and floor as `crate::direction`):
            // raise the re-entry bar and fall back to top-down.
            alpha_eff = (alpha_eff / 8).max(1);
            bottom_up = false;
        }
        let comm_spent = comm.comm_wall() - comm_before;
        comm.push_level_timing(LevelTiming {
            level: (level - 1) as u32,
            compute: level_start.elapsed().saturating_sub(comm_spent),
            comm: comm_spent,
            direction: dir,
        });
        comm.trace_span(SpanKind::Level, level_t, frontier.len() as u64);
        if gnext == 0 {
            comm.trace_enter_level(dmbfs_trace::NO_LEVEL);
            break;
        }
        gfrontier = gnext;
        gfrontier_edges = gnext_edges;
        frontier = next;
        level += 1;
    }
    (level as u32, codec_levels)
}

/// One distributed bottom-up level. The rank's frontier slice (owned
/// vertices at distance `level - 1`) travels as a [`Codec::Bitmap`]
/// `encode_set` payload through one `allgatherv_wire`; the decoded slices
/// form the global frontier bitmap, and the owner-side scan claims every
/// locally-owned unvisited vertex whose adjacency hits the bitmap — first
/// hit in CSR order, so parents are deterministic for any rank count.
/// Returns the next local frontier and the number of edges examined.
#[allow(clippy::too_many_arguments)]
fn bottom_up_level(
    comm: &Comm,
    local: &Local1d,
    frontier: &mut [VertexId],
    level: i64,
    pool: Option<&rayon::ThreadPool>,
    levels: &[AtomicI64],
    parents: &[AtomicI64],
    codec_levels: &mut Vec<LevelCodecStats>,
) -> (Vec<VertexId>, u64) {
    // The set encoder wants sorted-unique vertices; claims arrive once per
    // vertex, so sorting suffices.
    frontier.sort_unstable();
    let broadcast_t = comm.trace_start();
    let mine = encode_set(frontier, local.range.clone(), Codec::Bitmap);
    let mut stats = LevelCodecStats {
        level: level as usize,
        ..Default::default()
    };
    stats.note(&mine);
    codec_levels.push(stats);
    let slices = comm.allgatherv_wire(mine);
    // Assemble the global frontier bitmap (one bit per vertex of the
    // domain) from the decoded per-rank slices.
    let domain = local.block.domain() as usize;
    let mut bits = vec![0u64; domain.div_ceil(64)];
    let mut global_frontier = 0u64;
    for buf in &slices {
        for v in decode_set(buf.bytes()) {
            bits[(v / 64) as usize] |= 1 << (v % 64);
            global_frontier += 1;
        }
    }
    comm.trace_span(SpanKind::BitmapBroadcast, broadcast_t, global_frontier);

    // Owner-side scan: each unvisited owned vertex probes its adjacency
    // against the bitmap, exiting at the first hit. Rows are independent
    // (each claims only its own vertex), so the hybrid pool splits the
    // owned range with no synchronization beyond the atomic stores.
    let scan_t = comm.trace_start();
    let in_frontier = |u: VertexId| bits[(u / 64) as usize] >> (u % 64) & 1 == 1;
    let scan_one = |i: usize, next: &mut Vec<VertexId>, examined: &mut u64| {
        if levels[i].load(Ordering::Relaxed) != UNREACHED {
            return;
        }
        let v = local.to_global(i);
        for &u in local.neighbors(v) {
            *examined += 1;
            if in_frontier(u) {
                levels[i].store(level, Ordering::Relaxed);
                parents[i].store(u as i64, Ordering::Relaxed);
                next.push(v);
                break;
            }
        }
    };
    let (next, examined) = match pool {
        Some(pool) => {
            let batch_t = comm.trace_start();
            let out = pool.install(|| {
                (0..local.count())
                    .into_par_iter()
                    .with_min_len(64)
                    .fold(
                        || (Vec::new(), 0u64),
                        |(mut next, mut examined), i| {
                            scan_one(i, &mut next, &mut examined);
                            (next, examined)
                        },
                    )
                    .reduce(
                        || (Vec::new(), 0u64),
                        |(mut a, ae), (mut b, be)| {
                            a.append(&mut b);
                            (a, ae + be)
                        },
                    )
            });
            comm.trace_span(SpanKind::TaskBatch, batch_t, local.count() as u64);
            out
        }
        None => {
            let mut next = Vec::new();
            let mut examined = 0u64;
            for i in 0..local.count() {
                scan_one(i, &mut next, &mut examined);
            }
            (next, examined)
        }
    };
    comm.trace_span(SpanKind::BottomUpScan, scan_t, examined);
    (next, examined)
}

/// The codec pipeline around the all-to-all: per destination, sort the
/// pairs and collapse duplicate targets to their maximum parent (the
/// canonical tie-break, see [`unpack_serial`]), drop already-sent vertices
/// through the sieve, encode, exchange as wire bytes, decode.
///
/// Under a hybrid pool the per-destination encode work (sort, dedup,
/// sieve, encode) and the receive-side decode both fan out across pool
/// threads: destinations are independent, and the sieve's atomic bitmap
/// covers disjoint owner ranges per destination. The collective itself
/// stays on the rank's main thread (the [`Comm`] threading invariant).
fn encode_exchange(
    comm: &Comm,
    local: &Local1d,
    send: Vec<Vec<(u64, u64)>>,
    codec: Codec,
    sieve: Option<&Sieve>,
    level: i64,
    pool: Option<&rayon::ThreadPool>,
) -> (Vec<Vec<(u64, u64)>>, LevelCodecStats) {
    let encode_one = |j: usize, mut pairs: Vec<(u64, u64)>| -> (WireBuf, u64) {
        pairs.sort_unstable();
        // Sorted by (target, parent): sliding the later parent into the
        // retained element leaves each target once, with its max parent.
        pairs.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 = a.1;
                true
            } else {
                false
            }
        });
        let mut dropped = 0u64;
        if let Some(s) = sieve {
            let before = pairs.len();
            pairs.retain(|&(t, _)| !s.test_and_set(t as usize));
            dropped = (before - pairs.len()) as u64;
        }
        (encode_pairs(&pairs, local.block.range(j), codec), dropped)
    };
    let encode_t = comm.trace_start();
    let encoded: Vec<(WireBuf, u64)> = match pool {
        Some(pool) => pool.install(|| {
            send.into_par_iter()
                .enumerate()
                .map(|(j, pairs)| encode_one(j, pairs))
                .collect()
        }),
        None => send
            .into_iter()
            .enumerate()
            .map(|(j, pairs)| encode_one(j, pairs))
            .collect(),
    };
    let mut stats = LevelCodecStats {
        level: level as usize,
        ..Default::default()
    };
    let mut bufs: Vec<WireBuf> = Vec::with_capacity(encoded.len());
    for (j, (buf, dropped)) in encoded.into_iter().enumerate() {
        stats.sieve_hits += dropped;
        if j != comm.rank() {
            stats.note(&buf);
        }
        bufs.push(buf);
    }
    comm.trace_span(SpanKind::Encode, encode_t, stats.sieve_hits);
    let wire = comm.alltoallv_wire(bufs);
    let decode_t = comm.trace_start();
    let recv: Vec<Vec<(u64, u64)>> = match pool {
        Some(pool) => pool.install(|| wire.par_iter().map(|b| decode_pairs(b.bytes())).collect()),
        None => wire.iter().map(|b| decode_pairs(b.bytes())).collect(),
    };
    let decoded: u64 = recv.iter().map(|b| b.len() as u64).sum();
    comm.trace_span(SpanKind::Decode, decode_t, decoded);
    (recv, stats)
}

/// One level of the chunked, double-buffered overlap pipeline: the
/// frontier is split into `k` contiguous chunks; while chunk `c`'s wire
/// buffers are in flight on the nonblocking [`Comm::ialltoallv_wire`],
/// chunk `c + 1` is packed, deduplicated, sieved, and encoded, and each
/// completed chunk is decoded and unpacked as it lands. Every rank runs
/// exactly `k` start/wait pairs per level — chunks may be empty, but the
/// collective schedule stays symmetric across ranks.
///
/// Bit-identity with the blocking path: the sieve is only *read*
/// ([`Sieve::contains`]) while chunks are in flight and marked
/// ([`Sieve::set`]) once at the end of the level, so chunk boundaries
/// never change which pairs are dropped; and the receiver's claim /
/// max-parent merge (see [`unpack_serial`]) is order-independent, so
/// delivering a level's pairs in `k` batches leaves the parent tree
/// unchanged. A vertex targeted from two chunks is sent twice (the
/// blocking path's whole-level dedup would have collapsed it) — extra
/// wire bytes, never a different tree.
#[allow(clippy::too_many_arguments)]
fn overlapped_level(
    comm: &Comm,
    local: &Local1d,
    frontier: &[VertexId],
    codec: Codec,
    sieve: Option<&Sieve>,
    level: i64,
    pool: Option<&rayon::ThreadPool>,
    k: usize,
    levels: &[AtomicI64],
    parents: &[AtomicI64],
) -> (Vec<VertexId>, LevelCodecStats) {
    let p = comm.size();
    let mut stats = LevelCodecStats {
        level: level as usize,
        ..Default::default()
    };
    // Targets shipped this level, marked in the sieve only after the last
    // chunk (deduplicated first, so a target shipped from two chunks never
    // counts a spurious sieve hit at marking time).
    let mut sent: Vec<u64> = Vec::new();

    let encode_chunk =
        |c: usize, stats: &mut LevelCodecStats, sent: &mut Vec<u64>| -> Vec<WireBuf> {
            let (lo, hi) = (c * frontier.len() / k, (c + 1) * frontier.len() / k);
            let chunk = &frontier[lo..hi];
            let pack_t = comm.trace_start();
            let send = match pool {
                Some(pool) => pool.install(|| pack_parallel(local, chunk, p)),
                None => pack_serial(local, chunk, p),
            };
            comm.trace_span(SpanKind::Pack, pack_t, chunk.len() as u64);
            let encode_one = |j: usize, mut pairs: Vec<(u64, u64)>| -> (WireBuf, Vec<u64>, u64) {
                pairs.sort_unstable();
                pairs.dedup_by(|a, b| {
                    if a.0 == b.0 {
                        b.1 = a.1;
                        true
                    } else {
                        false
                    }
                });
                let mut dropped = 0u64;
                if let Some(s) = sieve {
                    let before = pairs.len();
                    pairs.retain(|&(t, _)| !s.contains(t as usize));
                    dropped = (before - pairs.len()) as u64;
                    s.count_hits(dropped);
                }
                let targets: Vec<u64> = pairs.iter().map(|&(t, _)| t).collect();
                (
                    encode_pairs(&pairs, local.block.range(j), codec),
                    targets,
                    dropped,
                )
            };
            let encode_t = comm.trace_start();
            let encoded: Vec<(WireBuf, Vec<u64>, u64)> = match pool {
                Some(pool) => pool.install(|| {
                    send.into_par_iter()
                        .enumerate()
                        .map(|(j, pairs)| encode_one(j, pairs))
                        .collect()
                }),
                None => send
                    .into_iter()
                    .enumerate()
                    .map(|(j, pairs)| encode_one(j, pairs))
                    .collect(),
            };
            let mut bufs: Vec<WireBuf> = Vec::with_capacity(encoded.len());
            let mut chunk_hits = 0u64;
            for (j, (buf, targets, dropped)) in encoded.into_iter().enumerate() {
                stats.sieve_hits += dropped;
                chunk_hits += dropped;
                if j != comm.rank() {
                    stats.note(&buf);
                }
                sent.extend(targets);
                bufs.push(buf);
            }
            comm.trace_span(SpanKind::Encode, encode_t, chunk_hits);
            bufs
        };

    let decode_unpack = |wire: Vec<WireBuf>, next: &mut Vec<VertexId>| {
        let decode_t = comm.trace_start();
        let recv: Vec<Vec<(u64, u64)>> = match pool {
            Some(pool) => {
                pool.install(|| wire.par_iter().map(|b| decode_pairs(b.bytes())).collect())
            }
            None => wire.iter().map(|b| decode_pairs(b.bytes())).collect(),
        };
        let decoded: u64 = recv.iter().map(|b| b.len() as u64).sum();
        comm.trace_span(SpanKind::Decode, decode_t, decoded);
        let unpack_t = comm.trace_start();
        let claimed = match pool {
            Some(pool) => pool.install(|| unpack_parallel(local, &recv, levels, parents, level)),
            None => unpack_serial(local, &recv, levels, parents, level),
        };
        comm.trace_span(SpanKind::Unpack, unpack_t, claimed.len() as u64);
        next.extend(claimed);
    };

    let mut next: Vec<VertexId> = Vec::new();
    let mut pending = comm.ialltoallv_wire(encode_chunk(0, &mut stats, &mut sent));
    for c in 1..k {
        // Encode chunk c while chunk c - 1 is in flight, then rotate the
        // double buffer: collect c - 1, launch c, unpack c - 1 while c
        // flies.
        let bufs = encode_chunk(c, &mut stats, &mut sent);
        let wire = pending.wait();
        pending = comm.ialltoallv_wire(bufs);
        decode_unpack(wire, &mut next);
    }
    let wire = pending.wait();
    decode_unpack(wire, &mut next);

    if let Some(s) = sieve {
        sent.sort_unstable();
        sent.dedup();
        for &t in &sent {
            s.set(t as usize);
        }
    }
    (next, stats)
}

/// Serial buffer packing (flat variant).
fn pack_serial(local: &Local1d, frontier: &[VertexId], p: usize) -> Vec<Vec<(u64, u64)>> {
    let mut send: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    for &u in frontier {
        for &v in local.neighbors(u) {
            send[local.block.owner(v)].push((v, u));
        }
    }
    send
}

/// Thread-parallel packing with thread-local buffers merged at the end
/// (the `tBuf_ij` scheme of Algorithm 2 lines 11/16/19).
fn pack_parallel(local: &Local1d, frontier: &[VertexId], p: usize) -> Vec<Vec<(u64, u64)>> {
    frontier
        .par_iter()
        .with_min_len(64)
        .fold(
            || vec![Vec::new(); p],
            |mut bufs: Vec<Vec<(u64, u64)>>, &u| {
                for &v in local.neighbors(u) {
                    bufs[local.block.owner(v)].push((v, u));
                }
                bufs
            },
        )
        .reduce(
            || vec![Vec::new(); p],
            |mut a, mut b| {
                for (dst, src) in a.iter_mut().zip(b.iter_mut()) {
                    dst.append(src);
                }
                a
            },
        )
}

/// Serial unpack: distance check and claim (lines 23–26).
///
/// The tie-break between same-level claims is canonical: the numerically
/// largest parent wins. That makes the final parent of a vertex the max
/// over *all* same-level arrivals, independent of arrival order, of
/// per-sender dedup, and of sender-side sieving — which is what keeps the
/// parent trees bit-identical across every codec × sieve configuration.
fn unpack_serial(
    local: &Local1d,
    recv: &[Vec<(u64, u64)>],
    levels: &[AtomicI64],
    parents: &[AtomicI64],
    level: i64,
) -> Vec<VertexId> {
    let mut next = Vec::new();
    for buf in recv {
        for &(v, parent) in buf {
            let i = local.to_local(v);
            let seen = levels[i].load(Ordering::Relaxed);
            if seen == UNREACHED {
                levels[i].store(level, Ordering::Relaxed);
                parents[i].store(parent as i64, Ordering::Relaxed);
                next.push(v);
            } else if seen == level {
                parents[i].fetch_max(parent as i64, Ordering::Relaxed);
            }
        }
    }
    next
}

/// Thread-parallel unpack with thread-local next stacks; CAS-claimed so a
/// vertex enters the next frontier exactly once. Applies the same
/// max-parent tie-break as [`unpack_serial`]: `fetch_max` is safe right
/// after a claim because any parent id is ≥ 0 > [`UNREACHED`].
fn unpack_parallel(
    local: &Local1d,
    recv: &[Vec<(u64, u64)>],
    levels: &[AtomicI64],
    parents: &[AtomicI64],
    level: i64,
) -> Vec<VertexId> {
    recv.par_iter()
        .flat_map_iter(|buf| buf.iter().copied())
        .fold(Vec::new, |mut next: Vec<VertexId>, (v, parent)| {
            let i = local.to_local(v);
            let seen = levels[i].load(Ordering::Relaxed);
            if seen == UNREACHED
                && levels[i]
                    .compare_exchange(UNREACHED, level, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                parents[i].fetch_max(parent as i64, Ordering::Relaxed);
                next.push(v);
            } else if levels[i].load(Ordering::Relaxed) == level {
                parents[i].fetch_max(parent as i64, Ordering::Relaxed);
            }
            next
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use crate::validate::validate_bfs;
    use dmbfs_comm::Pattern;
    use dmbfs_graph::gen::{grid2d, path, rmat, RmatConfig};
    use dmbfs_graph::{CsrGraph, EdgeList};

    fn rmat_graph(scale: u32, seed: u64) -> CsrGraph {
        let mut el = rmat(&RmatConfig::graph500(scale, seed));
        el.canonicalize_undirected();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn flat_matches_serial_on_grid() {
        let g = CsrGraph::from_edge_list(&grid2d(6, 9));
        let expected = serial_bfs(&g, 0);
        for p in [1, 2, 3, 5, 8] {
            let out = bfs1d(&g, 0, &Bfs1dConfig::flat(p));
            assert_eq!(out.levels, expected.levels, "p = {p}");
        }
    }

    #[test]
    fn flat_matches_serial_on_rmat() {
        let g = rmat_graph(9, 4);
        let expected = serial_bfs(&g, 3);
        for p in [2, 4, 7] {
            let out = bfs1d(&g, 3, &Bfs1dConfig::flat(p));
            assert_eq!(out.levels, expected.levels, "p = {p}");
            validate_bfs(&g, 3, &out.parents, &out.levels).unwrap();
        }
    }

    #[test]
    fn hybrid_matches_serial() {
        let g = rmat_graph(9, 6);
        let expected = serial_bfs(&g, 1);
        let out = bfs1d(&g, 1, &Bfs1dConfig::hybrid(3, 2));
        assert_eq!(out.levels, expected.levels);
        validate_bfs(&g, 1, &out.parents, &out.levels).unwrap();
    }

    #[test]
    fn high_diameter_path_works() {
        let g = CsrGraph::from_edge_list(&path(40));
        let out = bfs1d(&g, 0, &Bfs1dConfig::flat(4));
        let expected: Vec<i64> = (0..40).collect();
        assert_eq!(out.levels, expected);
    }

    #[test]
    fn source_not_on_rank_zero() {
        let g = CsrGraph::from_edge_list(&grid2d(4, 4));
        let expected = serial_bfs(&g, 15);
        let out = bfs1d(&g, 15, &Bfs1dConfig::flat(4));
        assert_eq!(out.levels, expected.levels);
    }

    #[test]
    fn disconnected_graph_terminates() {
        let el = EdgeList::new(8, vec![(0, 1), (1, 0), (6, 7), (7, 6)]);
        let g = CsrGraph::from_edge_list(&el);
        let out = bfs1d(&g, 0, &Bfs1dConfig::flat(3));
        assert_eq!(out.num_reached(), 2);
        assert_eq!(out.levels[6], UNREACHED);
    }

    #[test]
    fn run_reports_levels_and_alltoall_stats() {
        let g = rmat_graph(8, 2);
        let run = bfs1d_run(&g, 0, &Bfs1dConfig::flat(4));
        assert_eq!(run.per_rank_stats.len(), 4);
        assert!(run.seconds > 0.0);
        assert!(run.num_levels >= 2);
        // Every rank performed one alltoallv per level.
        for stats in &run.per_rank_stats {
            let a2a = stats
                .events
                .iter()
                .filter(|e| e.pattern == Pattern::Alltoallv)
                .count();
            assert_eq!(a2a as u32, run.num_levels);
        }
    }

    #[test]
    fn traced_run_captures_levels_phases_and_collectives() {
        let g = rmat_graph(8, 2);
        let run = bfs1d_run(&g, 0, &Bfs1dConfig::flat(4).with_trace(true));
        assert_eq!(run.per_rank_trace.len(), 4);
        for (rank, t) in run.per_rank_trace.iter().enumerate() {
            assert_eq!(t.rank, rank);
            assert_eq!(t.dropped, 0);
            let count = |k| t.spans.iter().filter(|s| s.kind == k).count() as u32;
            assert_eq!(count(SpanKind::Search), 1);
            assert_eq!(count(SpanKind::Level), run.num_levels);
            assert_eq!(count(SpanKind::Pack), run.num_levels);
            assert_eq!(count(SpanKind::Unpack), run.num_levels);
            assert_eq!(count(SpanKind::Encode), run.num_levels, "adaptive codec");
            assert!(count(SpanKind::Collective) > run.num_levels);
            // Each phase span nests inside its level's span.
            for s in t.spans.iter().filter(|s| s.kind == SpanKind::Pack) {
                let lvl = t
                    .spans
                    .iter()
                    .find(|l| l.kind == SpanKind::Level && l.level == s.level)
                    .expect("every pack has an enclosing level");
                assert!(lvl.start_ns <= s.start_ns && s.end_ns <= lvl.end_ns);
            }
        }
        // Untraced runs return placeholder traces with no spans.
        let run = bfs1d_run(&g, 0, &Bfs1dConfig::flat(4));
        assert_eq!(run.per_rank_trace.len(), 4);
        assert!(run.per_rank_trace.iter().all(|t| t.spans.is_empty()));
    }

    #[test]
    fn single_rank_equals_serial() {
        let g = rmat_graph(8, 9);
        let out = bfs1d(&g, 5, &Bfs1dConfig::flat(1));
        let expected = serial_bfs(&g, 5);
        assert_eq!(out.levels, expected.levels);
        // With one rank, even parents must match exactly (deterministic
        // order).
        validate_bfs(&g, 5, &out.parents, &out.levels).unwrap();
    }

    #[test]
    fn more_ranks_than_vertices() {
        let g = CsrGraph::from_edge_list(&path(3));
        let out = bfs1d(&g, 0, &Bfs1dConfig::flat(6));
        assert_eq!(out.levels, vec![0, 1, 2]);
    }

    #[test]
    fn hybrid_direction_matches_serial_oracle_and_schedule() {
        let g = rmat_graph(11, 7);
        let expected = serial_bfs(&g, 0);
        let serial_dir = crate::direction::direction_optimizing_bfs(&g, 0);
        for p in [1, 3, 4] {
            let cfg = Bfs1dConfig::flat(p).with_direction(DirectionMode::Hybrid);
            let run = bfs1d_run(&g, 0, &cfg);
            assert_eq!(run.output.levels, expected.levels, "p = {p}");
            validate_bfs(&g, 0, &run.output.parents, &run.output.levels).unwrap();
            // The distributed heuristic consumes the same (now allreduced)
            // counts as the serial one, so the schedules must agree level
            // for level.
            let dirs = run.level_directions();
            let serial_dirs: Vec<LevelDirection> = serial_dir
                .steps
                .iter()
                .map(|s| match s.direction {
                    crate::direction::Direction::TopDown => LevelDirection::TopDown,
                    crate::direction::Direction::BottomUp => LevelDirection::BottomUp,
                })
                .collect();
            assert_eq!(dirs, serial_dirs, "p = {p}");
            assert!(
                dirs.contains(&LevelDirection::BottomUp),
                "R-MAT peak levels should trigger bottom-up: {dirs:?}"
            );
        }
    }

    #[test]
    fn forced_bottom_up_is_deterministic_across_rank_counts() {
        let g = rmat_graph(9, 4);
        let expected = serial_bfs(&g, 3);
        let baseline = bfs1d_run(
            &g,
            3,
            &Bfs1dConfig::flat(1).with_direction(DirectionMode::BottomUp),
        );
        assert_eq!(baseline.output.levels, expected.levels);
        validate_bfs(&g, 3, &baseline.output.parents, &baseline.output.levels).unwrap();
        assert!(baseline
            .level_directions()
            .iter()
            .all(|&d| d == LevelDirection::BottomUp));
        for p in [2, 5, 8] {
            let cfg = Bfs1dConfig::flat(p).with_direction(DirectionMode::BottomUp);
            let run = bfs1d_run(&g, 3, &cfg);
            // Bottom-up parents are the first hit in CSR adjacency order —
            // identical whatever the rank count.
            assert_eq!(run.output.parents, baseline.output.parents, "p = {p}");
            assert_eq!(run.output.levels, expected.levels, "p = {p}");
        }
        // The hybrid pool scans the same vertices with the same probe
        // order, so threading changes nothing either.
        let hybrid = bfs1d_run(
            &g,
            3,
            &Bfs1dConfig::hybrid(3, 2).with_direction(DirectionMode::BottomUp),
        );
        assert_eq!(hybrid.output.parents, baseline.output.parents);
    }

    #[test]
    fn hybrid_levels_tag_directions_in_timings_and_trace() {
        let g = rmat_graph(10, 7);
        let cfg = Bfs1dConfig::flat(4)
            .with_direction(DirectionMode::Hybrid)
            .with_trace(true);
        let run = bfs1d_run(&g, 0, &cfg);
        let dirs = run.level_directions();
        assert_eq!(dirs.len() as u32, run.num_levels);
        assert!(dirs.contains(&LevelDirection::BottomUp));
        // Every rank records the identical schedule.
        for stats in &run.per_rank_stats {
            let rank_dirs: Vec<LevelDirection> =
                stats.level_timings.iter().map(|t| t.direction).collect();
            assert_eq!(rank_dirs, dirs);
        }
        for t in &run.per_rank_trace {
            // One Direction span per level, detail = the direction tag.
            let spans: Vec<_> = t
                .spans
                .iter()
                .filter(|s| s.kind == SpanKind::Direction)
                .collect();
            assert_eq!(spans.len() as u32, run.num_levels);
            for s in &spans {
                assert_eq!(
                    LevelDirection::from_tag(s.detail),
                    dirs[s.level as usize],
                    "trace tag matches the recorded schedule"
                );
            }
            // Bottom-up levels carry the broadcast + scan phase spans.
            let bu_levels = dirs
                .iter()
                .filter(|&&d| d == LevelDirection::BottomUp)
                .count();
            let count = |k| t.spans.iter().filter(|s| s.kind == k).count();
            assert_eq!(count(SpanKind::BitmapBroadcast), bu_levels);
            assert_eq!(count(SpanKind::BottomUpScan), bu_levels);
        }
    }

    #[test]
    fn hybrid_composes_with_codec_sieve_and_overlap() {
        let g = rmat_graph(9, 11);
        let expected = serial_bfs(&g, 2);
        for codec in [Codec::Off, Codec::Adaptive] {
            for overlap in [None, std::num::NonZeroUsize::new(2)] {
                let cfg = Bfs1dConfig::flat(4)
                    .with_direction(DirectionMode::Hybrid)
                    .with_codec(codec)
                    .with_overlap(overlap);
                let run = bfs1d_run(&g, 2, &cfg);
                assert_eq!(
                    run.output.levels, expected.levels,
                    "codec {codec:?}, overlap {overlap:?}"
                );
                validate_bfs(&g, 2, &run.output.parents, &run.output.levels).unwrap();
            }
        }
    }

    #[test]
    fn overlapped_runs_are_bit_identical_to_blocking() {
        let g = rmat_graph(9, 11);
        let baseline = bfs1d(&g, 2, &Bfs1dConfig::flat(4));
        for k in [1usize, 2, 3, 8] {
            let cfg = Bfs1dConfig::flat(4).with_overlap(std::num::NonZeroUsize::new(k));
            let out = bfs1d(&g, 2, &cfg);
            assert_eq!(out.parents, baseline.parents, "k = {k}");
            assert_eq!(out.levels, baseline.levels, "k = {k}");
        }
        // Overlap composes with the hybrid pool and with sieving off.
        let hybrid = bfs1d(
            &g,
            2,
            &Bfs1dConfig::hybrid(3, 2)
                .with_sieve(false)
                .with_overlap(std::num::NonZeroUsize::new(2)),
        );
        assert_eq!(hybrid.levels, baseline.levels);
    }

    #[test]
    fn overlapped_run_records_exchange_pairs_per_level() {
        let g = rmat_graph(8, 2);
        let k = 2u32;
        let run = bfs1d_run(
            &g,
            0,
            &Bfs1dConfig::flat(4)
                .with_overlap(std::num::NonZeroUsize::new(k as usize))
                .with_trace(true),
        );
        for t in &run.per_rank_trace {
            let count = |kind| t.spans.iter().filter(|s| s.kind == kind).count() as u32;
            assert_eq!(count(SpanKind::ExchangeStart), k * run.num_levels);
            assert_eq!(count(SpanKind::ExchangeWait), k * run.num_levels);
            assert_eq!(count(SpanKind::Exchange), 0, "no blocking exchange ran");
        }
        // Each rank records k alltoallv-pattern events per level, each with
        // exposed wall and a (possibly zero) hidden window.
        for stats in &run.per_rank_stats {
            let a2a = stats
                .events
                .iter()
                .filter(|e| e.pattern == Pattern::Alltoallv)
                .count() as u32;
            assert_eq!(a2a, k * run.num_levels);
        }
    }
}
