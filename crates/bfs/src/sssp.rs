//! Distributed single-source shortest paths — the second of §1's classical
//! problems ("finding spanning trees, shortest paths, …"), built on the
//! same 1D owner-aggregation machinery as Algorithm 2.
//!
//! The algorithm is level-synchronous Bellman–Ford: each round relaxes the
//! out-edges of vertices whose tentative distance improved in the previous
//! round, routes the candidate `(target, distance, parent)` triples to the
//! owners with one `Alltoallv`, and terminates when a global `Allreduce`
//! sees no improvement anywhere. On unit weights every round is exactly a
//! BFS level, so [`distributed_sssp`] degenerates to Algorithm 2 — a
//! cross-check the tests exploit.
//!
//! The serial oracle is a binary-heap Dijkstra ([`serial_sssp`]).
//!
//! Both distributed variants run on the shared execution harness
//! ([`dmbfs_runtime::run_ranks`]): a [`RunConfig`] selects ranks, hybrid
//! threading (the relaxation pack fans out over the rank pool), and span
//! tracing, and every run carries per-rank wire-byte accounting.

use dmbfs_comm::CommStats;
use dmbfs_graph::weighted::WeightedCsr;
use dmbfs_graph::{Block1D, VertexId};
use dmbfs_runtime::{run_ranks, scatter_block, RunConfig};
use dmbfs_trace::{RankTrace, SpanKind, NO_LEVEL};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of an SSSP computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsspOutput {
    /// Source vertex.
    pub source: VertexId,
    /// `dists[v]` = shortest distance from the source, `u64::MAX` if
    /// unreachable.
    pub dists: Vec<u64>,
    /// Shortest-path-tree predecessor, `-1` if unreachable; the source is
    /// its own parent.
    pub parents: Vec<i64>,
}

/// Unreachable marker in [`SsspOutput::dists`].
pub const UNREACHABLE: u64 = u64::MAX;

impl SsspOutput {
    /// Number of vertices with a finite distance.
    pub fn num_reached(&self) -> u64 {
        self.dists.iter().filter(|&&d| d != UNREACHABLE).count() as u64
    }
}

/// Serial Dijkstra with a binary heap — the correctness oracle.
pub fn serial_sssp(g: &WeightedCsr, source: VertexId) -> SsspOutput {
    let n = g.num_vertices() as usize;
    assert!((source as usize) < n, "source out of range");
    let mut dists = vec![UNREACHABLE; n];
    let mut parents = vec![-1i64; n];
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
    dists[source as usize] = 0;
    parents[source as usize] = source as i64;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dists[u as usize] {
            continue; // stale entry
        }
        for &(v, w) in g.neighbors(u) {
            let cand = d + w as u64;
            if cand < dists[v as usize] {
                dists[v as usize] = cand;
                parents[v as usize] = u as i64;
                heap.push(Reverse((cand, v)));
            }
        }
    }
    SsspOutput {
        source,
        dists,
        parents,
    }
}

/// An SSSP run with the harness's full measurement surface.
#[derive(Clone, Debug)]
pub struct SsspRun {
    /// Assembled global result.
    pub output: SsspOutput,
    /// Per-rank communication event streams (index = rank).
    pub per_rank_stats: Vec<CommStats>,
    /// Per-rank span traces (index = rank); empty spans unless
    /// [`RunConfig::trace`] was set.
    pub per_rank_trace: Vec<RankTrace>,
    /// Wall seconds of the timed region (max over ranks).
    pub seconds: f64,
    /// Communication rounds executed (Bellman–Ford relaxation rounds, or
    /// Δ-stepping buckets processed).
    pub rounds: u32,
}

/// Serial relaxation pack: route each candidate `(target, distance,
/// parent)` triple of the active set's out-edges to the target's owner.
fn relax_pack(
    g: &WeightedCsr,
    block: &Block1D,
    start: u64,
    dists: &[u64],
    active: &[VertexId],
    p: usize,
) -> Vec<Vec<(u64, u64, u64)>> {
    let mut send: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); p];
    for &u in active {
        let du = dists[(u - start) as usize];
        for &(v, w) in g.neighbors(u) {
            send[block.owner(v)].push((v, du + w as u64, u));
        }
    }
    send
}

/// Thread-parallel relaxation pack with order-preserving chunk
/// concatenation: the per-destination buffers come out byte-identical to
/// [`relax_pack`]'s, so hybrid runs produce bit-identical trees.
fn relax_pack_parallel(
    g: &WeightedCsr,
    block: &Block1D,
    start: u64,
    dists: &[u64],
    active: &[VertexId],
    p: usize,
) -> Vec<Vec<(u64, u64, u64)>> {
    active
        .par_iter()
        .with_min_len(64)
        .fold(
            || vec![Vec::new(); p],
            |mut bufs: Vec<Vec<(u64, u64, u64)>>, &u| {
                let du = dists[(u - start) as usize];
                for &(v, w) in g.neighbors(u) {
                    bufs[block.owner(v)].push((v, du + w as u64, u));
                }
                bufs
            },
        )
        .reduce(
            || vec![Vec::new(); p],
            |mut a, mut b| {
                for (dst, src) in a.iter_mut().zip(b.iter_mut()) {
                    dst.append(src);
                }
                a
            },
        )
}

/// Distributed level-synchronous Bellman–Ford over `p` simulated ranks.
pub fn distributed_sssp(g: &WeightedCsr, source: VertexId, p: usize) -> SsspOutput {
    distributed_sssp_run(g, source, &RunConfig::flat(p)).output
}

/// [`distributed_sssp`] under a full [`RunConfig`]: hybrid threading of
/// the relaxation pack, per-rank stats, and span traces. The codec/sieve
/// fields are ignored (the triple payload has no codec path yet).
pub fn distributed_sssp_run(g: &WeightedCsr, source: VertexId, cfg: &RunConfig) -> SsspRun {
    let p = cfg.ranks;
    assert!(p > 0);
    assert!(source < g.num_vertices(), "source out of range");
    let n = g.num_vertices();

    let run = run_ranks(cfg, |ctx| {
        let comm = ctx.comm();
        let block = Block1D::new(n, p);
        let range = block.range(ctx.rank());
        // Adjacency access below touches only owned vertices, i.e. exactly
        // this rank's 1D partition of the weighted graph.
        let nloc = (range.end - range.start) as usize;
        let mut dists = vec![UNREACHABLE; nloc];
        let mut parents = vec![-1i64; nloc];
        let mut active: Vec<VertexId> = Vec::new();
        if block.owner(source) == ctx.rank() {
            let s = (source - range.start) as usize;
            dists[s] = 0;
            parents[s] = source as i64;
            active.push(source);
        }

        let rounds = ctx.timed(source, || {
            let mut round: i64 = 0;
            loop {
                comm.trace_enter_level(round);
                let round_t = comm.trace_start();
                // Relax out-edges of locally active vertices into
                // per-destination buffers: (target, candidate, parent).
                let pack_t = comm.trace_start();
                let send = match ctx.pool() {
                    Some(pool) => pool.install(|| {
                        relax_pack_parallel(g, &block, range.start, &dists, &active, p)
                    }),
                    None => relax_pack(g, &block, range.start, &dists, &active, p),
                };
                comm.trace_span(SpanKind::Pack, pack_t, active.len() as u64);
                let recv = comm.alltoallv(send);
                // Owners apply improvements.
                let unpack_t = comm.trace_start();
                let mut next: Vec<VertexId> = Vec::new();
                for buf in recv {
                    for (v, cand, parent) in buf {
                        let i = (v - range.start) as usize;
                        if cand < dists[i] {
                            dists[i] = cand;
                            parents[i] = parent as i64;
                            next.push(v);
                        }
                    }
                }
                next.sort_unstable();
                next.dedup();
                comm.trace_span(SpanKind::Unpack, unpack_t, next.len() as u64);
                let total = comm.allreduce(next.len() as u64, |a, b| a + b);
                comm.trace_span(SpanKind::Level, round_t, active.len() as u64);
                round += 1;
                if total == 0 {
                    comm.trace_enter_level(NO_LEVEL);
                    break;
                }
                active = next;
            }
            round as u32
        });

        (range.start, dists, parents, rounds)
    });

    assemble_sssp(source, n, run)
}

/// Distributed Δ-stepping (Meyer & Sanders) over `p` simulated ranks —
/// the bucketed middle ground between Dijkstra (Δ = 1 on integer weights:
/// one bucket per distance) and Bellman–Ford (Δ = ∞: a single bucket).
/// The Graph 500 SSSP benchmark standardized on this algorithm.
///
/// Buckets are processed globally in order (an `Allreduce` finds the next
/// nonempty bucket). Within a bucket, *light* edges (weight ≤ Δ) are
/// relaxed iteratively until the bucket stabilizes; *heavy* edges
/// (weight > Δ) are relaxed once per settled vertex when the bucket
/// closes, since they can never reinsert into the current bucket.
pub fn distributed_delta_stepping(
    g: &WeightedCsr,
    source: VertexId,
    delta: u64,
    p: usize,
) -> SsspOutput {
    distributed_delta_stepping_run(g, source, delta, &RunConfig::flat(p)).output
}

/// [`distributed_delta_stepping`] under a full [`RunConfig`]. The bucket
/// scan stays serial (it is a cheap linear pass, and the algorithm's
/// phase structure leaves little batch-parallel pack work), but the run
/// still carries stats, traces, and barrier-to-barrier timing.
pub fn distributed_delta_stepping_run(
    g: &WeightedCsr,
    source: VertexId,
    delta: u64,
    cfg: &RunConfig,
) -> SsspRun {
    let p = cfg.ranks;
    assert!(p > 0);
    assert!(delta >= 1, "delta must be at least 1");
    assert!(source < g.num_vertices(), "source out of range");
    let n = g.num_vertices();

    let run = run_ranks(cfg, |ctx| {
        let comm = ctx.comm();
        let block = Block1D::new(n, p);
        let range = block.range(ctx.rank());
        let nloc = (range.end - range.start) as usize;
        let mut dists = vec![UNREACHABLE; nloc];
        let mut parents = vec![-1i64; nloc];
        if block.owner(source) == ctx.rank() {
            let s = (source - range.start) as usize;
            dists[s] = 0;
            parents[s] = source as i64;
        }
        let bucket_of = |d: u64| -> u64 { d / delta };
        // A vertex is settled once its bucket closes; its distance is then
        // final (every lighter bucket has already closed), so it never
        // re-enters the candidate scan.
        let mut settled = vec![false; nloc];

        let rounds = ctx.timed(source, || {
            let mut buckets_processed: i64 = 0;
            loop {
                comm.trace_enter_level(buckets_processed);
                let bucket_t = comm.trace_start();
                // Find the globally lowest nonempty bucket among unsettled work.
                let local_min = dists
                    .iter()
                    .zip(settled.iter())
                    .filter(|&(&d, &s)| d != UNREACHABLE && !s)
                    .map(|(&d, _)| bucket_of(d))
                    .min();
                let current = comm.allreduce(local_min.unwrap_or(u64::MAX), |a, b| a.min(b));
                if current == u64::MAX {
                    comm.trace_enter_level(NO_LEVEL);
                    break;
                }

                // Light-edge phases: iterate until no distance in the current
                // bucket improves anywhere.
                let mut processed: Vec<bool> = vec![false; nloc];
                loop {
                    let mut send: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); p];
                    for i in 0..nloc {
                        let d = dists[i];
                        if d == UNREACHABLE || settled[i] || bucket_of(d) != current || processed[i]
                        {
                            continue;
                        }
                        processed[i] = true;
                        let u = range.start + i as u64;
                        for &(v, w) in g.neighbors(u) {
                            if (w as u64) <= delta {
                                send[block.owner(v)].push((v, d + w as u64, u));
                            }
                        }
                    }
                    let recv = comm.alltoallv(send);
                    let mut reinserted = 0u64;
                    for buf in recv {
                        for (v, cand, parent) in buf {
                            let i = (v - range.start) as usize;
                            if cand < dists[i] {
                                dists[i] = cand;
                                parents[i] = parent as i64;
                                if bucket_of(cand) == current {
                                    // Back into the open bucket: another phase.
                                    processed[i] = false;
                                    reinserted += 1;
                                }
                            }
                        }
                    }
                    let total = comm.allreduce(reinserted, |a, b| a + b);
                    if total == 0 {
                        break;
                    }
                }

                // Heavy-edge relaxation: once per vertex settled in this bucket.
                let mut send: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); p];
                for i in 0..nloc {
                    let d = dists[i];
                    if d == UNREACHABLE || settled[i] || bucket_of(d) != current {
                        continue;
                    }
                    let u = range.start + i as u64;
                    for &(v, w) in g.neighbors(u) {
                        if (w as u64) > delta {
                            send[block.owner(v)].push((v, d + w as u64, u));
                        }
                    }
                }
                let recv = comm.alltoallv(send);
                for buf in recv {
                    for (v, cand, parent) in buf {
                        let i = (v - range.start) as usize;
                        if cand < dists[i] {
                            dists[i] = cand;
                            parents[i] = parent as i64;
                        }
                    }
                }
                // Close the bucket: everything left in it is final.
                let mut closed = 0u64;
                for i in 0..nloc {
                    if dists[i] != UNREACHABLE && bucket_of(dists[i]) == current {
                        settled[i] = true;
                        closed += 1;
                    }
                }
                comm.trace_span(SpanKind::Level, bucket_t, closed);
                buckets_processed += 1;
            }
            buckets_processed as u32
        });

        (range.start, dists, parents, rounds)
    });

    assemble_sssp(source, n, run)
}

/// Assembles contiguous per-rank distance/parent blocks into an
/// [`SsspRun`], taking the round count as the max over ranks (they agree:
/// the loop is globally synchronized).
fn assemble_sssp(
    source: VertexId,
    n: u64,
    run: dmbfs_runtime::DistRun<(u64, Vec<u64>, Vec<i64>, u32)>,
) -> SsspRun {
    let mut dists = vec![UNREACHABLE; n as usize];
    let mut parents = vec![-1i64; n as usize];
    let mut rounds = 0;
    for (start, d, par, r) in run.per_rank {
        scatter_block(&mut dists, start, &d);
        scatter_block(&mut parents, start, &par);
        rounds = rounds.max(r);
    }
    SsspRun {
        output: SsspOutput {
            source,
            dists,
            parents,
        },
        per_rank_stats: run.per_rank_stats,
        per_rank_trace: run.per_rank_trace,
        seconds: run.seconds,
        rounds,
    }
}

/// Validates a shortest-path tree: distances satisfy the triangle
/// inequality over every edge with equality along tree edges.
pub fn validate_sssp(g: &WeightedCsr, out: &SsspOutput) -> Result<(), String> {
    let n = g.num_vertices() as usize;
    if out.dists.len() != n || out.parents.len() != n {
        return Err("output length mismatch".into());
    }
    if out.dists[out.source as usize] != 0 || out.parents[out.source as usize] != out.source as i64
    {
        return Err("source distance/parent wrong".into());
    }
    for (u, v, w) in g.edges() {
        let (du, dv) = (out.dists[u as usize], out.dists[v as usize]);
        if du != UNREACHABLE && (dv == UNREACHABLE || dv > du + w as u64) {
            return Err(format!("edge ({u},{v},{w}) violates optimality"));
        }
    }
    for v in 0..n as u64 {
        if v == out.source || out.parents[v as usize] < 0 {
            continue;
        }
        let parent = out.parents[v as usize] as VertexId;
        let w = g
            .neighbors(parent)
            .iter()
            .filter(|&&(t, _)| t == v)
            .map(|&(_, w)| w as u64)
            .min()
            .ok_or_else(|| format!("tree edge ({parent},{v}) not in graph"))?;
        if out.dists[v as usize] != out.dists[parent as usize] + w {
            return Err(format!("tree edge ({parent},{v}) not tight"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use dmbfs_graph::gen::{rmat, RmatConfig};
    use dmbfs_graph::weighted::attach_uniform_weights;
    use dmbfs_graph::EdgeList;

    fn weighted_rmat(scale: u32, max_w: dmbfs_graph::weighted::Weight, seed: u64) -> WeightedCsr {
        let mut el = rmat(&RmatConfig::graph500(scale, seed));
        el.canonicalize_undirected();
        WeightedCsr::from_edges(el.num_vertices, &attach_uniform_weights(&el, max_w, seed))
    }

    #[test]
    fn dijkstra_on_a_small_known_graph() {
        // 0 -2-> 1 -2-> 2, and a heavy shortcut 0 -9-> 2.
        let g = WeightedCsr::from_edges(
            3,
            &[
                (0, 1, 2),
                (1, 0, 2),
                (1, 2, 2),
                (2, 1, 2),
                (0, 2, 9),
                (2, 0, 9),
            ],
        );
        let out = serial_sssp(&g, 0);
        assert_eq!(out.dists, vec![0, 2, 4]);
        assert_eq!(out.parents, vec![0, 0, 1]);
        validate_sssp(&g, &out).unwrap();
    }

    #[test]
    fn distributed_matches_dijkstra() {
        let g = weighted_rmat(8, 12, 5);
        let expected = serial_sssp(&g, 0);
        for p in [1usize, 3, 4, 7] {
            let got = distributed_sssp(&g, 0, p);
            assert_eq!(got.dists, expected.dists, "p = {p}");
            validate_sssp(&g, &got).unwrap();
        }
    }

    #[test]
    fn unit_weights_reduce_to_bfs() {
        let g = weighted_rmat(8, 1, 9);
        let sssp = distributed_sssp(&g, 2, 4);
        let bfs = serial_bfs(&g.structure(), 2);
        for v in 0..g.num_vertices() as usize {
            let expected = if bfs.levels[v] < 0 {
                UNREACHABLE
            } else {
                bfs.levels[v] as u64
            };
            assert_eq!(sssp.dists[v], expected, "vertex {v}");
        }
    }

    #[test]
    fn disconnected_vertices_stay_unreachable() {
        let el = EdgeList::new(5, vec![(0, 1), (1, 0)]);
        let edges = attach_uniform_weights(&el, 5, 1);
        let g = WeightedCsr::from_edges(5, &edges);
        let out = distributed_sssp(&g, 0, 2);
        assert_eq!(out.num_reached(), 2);
        assert_eq!(out.dists[3], UNREACHABLE);
        validate_sssp(&g, &out).unwrap();
    }

    #[test]
    fn delta_stepping_matches_dijkstra() {
        let g = weighted_rmat(8, 12, 7);
        let expected = serial_sssp(&g, 0);
        for delta in [1u64, 3, 6, 12, 100] {
            for p in [1usize, 3, 4] {
                let got = distributed_delta_stepping(&g, 0, delta, p);
                assert_eq!(got.dists, expected.dists, "delta={delta} p={p}");
                validate_sssp(&g, &got).unwrap();
            }
        }
    }

    #[test]
    fn delta_one_behaves_like_dijkstra_buckets() {
        // Δ = 1 on unit weights: one bucket per BFS level.
        let g = weighted_rmat(7, 1, 3);
        let got = distributed_delta_stepping(&g, 1, 1, 2);
        assert_eq!(got.dists, serial_sssp(&g, 1).dists);
    }

    #[test]
    fn huge_delta_degenerates_to_bellman_ford() {
        let g = weighted_rmat(7, 9, 5);
        let a = distributed_delta_stepping(&g, 0, u64::from(u32::MAX), 3);
        let b = distributed_sssp(&g, 0, 3);
        assert_eq!(a.dists, b.dists);
    }

    #[test]
    fn delta_stepping_on_disconnected_graph() {
        let el = EdgeList::new(5, vec![(0, 1), (1, 0)]);
        let edges = attach_uniform_weights(&el, 5, 1);
        let g = WeightedCsr::from_edges(5, &edges);
        let out = distributed_delta_stepping(&g, 0, 3, 2);
        assert_eq!(out.num_reached(), 2);
        validate_sssp(&g, &out).unwrap();
    }

    #[test]
    fn validator_catches_broken_distances() {
        let g = weighted_rmat(7, 8, 3);
        let mut out = serial_sssp(&g, 0);
        // Corrupt a reachable vertex's distance.
        let v = (0..g.num_vertices() as usize)
            .find(|&v| out.dists[v] != UNREACHABLE && v as u64 != 0)
            .unwrap();
        out.dists[v] += 100;
        assert!(validate_sssp(&g, &out).is_err());
    }

    #[test]
    fn heavier_weights_change_tree_shape() {
        // Sanity: distances with weights ≥ BFS levels (weights ≥ 1).
        let g = weighted_rmat(7, 9, 11);
        let sssp = serial_sssp(&g, 1);
        let bfs = serial_bfs(&g.structure(), 1);
        for v in 0..g.num_vertices() as usize {
            if bfs.levels[v] >= 0 {
                assert!(sssp.dists[v] >= bfs.levels[v] as u64);
            }
        }
    }
}
