//! Workspace maintenance tasks, chiefly the rank-safety lint pass
//! (`cargo run -p xtask -- lint`).
//!
//! The lint pass is a hand-rolled lexer plus token-pattern rules — no
//! external dependencies, so the offline vendored build keeps working. It
//! enforces five named repo invariants (documented with examples in
//! `docs/verification.md`):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `world-run-boundary`  | `World::run*` only in `crates/runtime` + `crates/comm` |
//! | `no-raw-spawn`        | `thread::spawn` only in `crates/comm` + `crates/runtime` |
//! | `timed-regions-only`  | `Instant::now` in rank closures only via `ctx.timed` |
//! | `collective-symmetry` | no collectives inside rank-guarded branches |
//! | `no-post-deposit-mutation` | no `bytes_mut` on payloads received from `*_wire` collectives |

pub mod cfg;
pub mod lexer;
pub mod rules;
pub mod schedule;

pub use rules::Finding;
pub use schedule::{analyze_sources, analyze_workspace, Analysis};

use std::path::{Path, PathBuf};

/// Directory names never descended into during the scan: vendored stubs,
/// build output, and the lint pass's own seeded-violation fixtures.
const SKIP_DIRS: &[&str] = &["third_party", "target", "fixtures", ".git"];

/// The workspace sub-trees the lint pass covers. `third_party/` is
/// deliberately absent: vendored code keeps its upstream idioms.
const SCAN_ROOTS: &[&str] = &["crates", "src", "xtask/src"];

/// Lints every `.rs` file under the standard scan roots of `root`
/// (the workspace root). Findings come back sorted by path, then line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        findings.extend(lint_source(&rel, &src));
    }
    Ok(findings)
}

/// Lints a single source string as if it lived at workspace-relative
/// `path` (the path decides which rules apply). Exposed for tests.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    rules::check_file(path, &lexer::lex(src))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root, taken as the parent of the `xtask` crate directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask must live one level below the workspace root")
        .to_path_buf()
}
