//! The five rank-safety lint rules, each a token-pattern over the lexed
//! stream from [`crate::lexer`]. Every rule reports `file:line rule-name:
//! message` findings; suppression is via `// lint: allow(rule-name)` on the
//! same line or the line above (see `docs/verification.md` for the
//! catalogue with examples).

use crate::lexer::{Lexed, Tok, TokKind};

/// One lint finding, already resolved to a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes) of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule name, e.g. `world-run-boundary`.
    pub rule: &'static str,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Rule: `World::run` / `World::run_verified` call sites may live only in
/// `crates/runtime` and `crates/comm`; everything else goes through the
/// shared driver.
pub const WORLD_RUN_BOUNDARY: &str = "world-run-boundary";
/// Rule: `thread::spawn` may appear only in `crates/comm` and
/// `crates/runtime` (and the vendored `third_party`, which is not scanned).
pub const NO_RAW_SPAWN: &str = "no-raw-spawn";
/// Rule: inside a `run_ranks` rank closure, wall-clock timing must go
/// through `ctx.timed` rather than raw `Instant::now`.
pub const TIMED_REGIONS_ONLY: &str = "timed-regions-only";
/// Rule: collectives must not sit inside rank-guarded branches
/// (`if rank == …` / `match rank`) — every rank of the group must reach
/// them, or the call deadlocks the rendezvous.
pub const COLLECTIVE_SYMMETRY: &str = "collective-symmetry";
/// Rule: a payload received from a `*_wire` collective must not be mutated
/// through `bytes_mut` — large payloads cross the board as `Arc` loans
/// shared with the sender, so the runtime panics on the write; the lint
/// catches the shape at review time (see `docs/zero-copy.md`).
pub const NO_POST_DEPOSIT_MUTATION: &str = "no-post-deposit-mutation";

/// The names of every `Comm` collective entry point; a `.name(` call on a
/// comm-like receiver inside a rank-guarded block is asymmetric.
const COLLECTIVES: &[&str] = &[
    "barrier",
    "alltoallv",
    "alltoallv_wire",
    "ialltoallv_wire",
    "wait",
    "allgatherv",
    "allgatherv_wire",
    "allgather",
    "allreduce",
    "broadcast",
    "gather",
    "gatherv",
    "scatterv",
    "exscan",
    "reduce_scatter",
    "sendrecv",
    "sendrecv_wire",
    "split",
];

/// Collective names that are also everyday method names (`str::split`,
/// `Iterator`-adjacent `gather` helpers). For these, the receiver directly
/// before the `.` must itself look comm-like (`comm`, `row_comm`, …) or be
/// a call result (`)`), otherwise the match is skipped.
const AMBIGUOUS_COLLECTIVES: &[&str] = &["split", "gather"];

/// `wait` completes a nonblocking exchange (`PendingExchange::wait`) and is
/// collective — but it is also how barriers, condvars, and child processes
/// park, none of which rendezvous on the board. It only counts when the
/// receiver looks like a pending exchange: an identifier mentioning
/// `pending` or `exchange`, or a call result (`)`), which catches the
/// chained `comm.ialltoallv_wire(bufs).wait()` form.
const EXCHANGE_WAIT: &str = "wait";

/// True when `rule` applies to the file at workspace-relative `path`
/// (forward-slash separators).
pub fn rule_applies(rule: &str, path: &str) -> bool {
    let in_comm = path.starts_with("crates/comm/");
    let in_runtime = path.starts_with("crates/runtime/");
    match rule {
        WORLD_RUN_BOUNDARY => !in_comm && !in_runtime,
        NO_RAW_SPAWN => !in_comm && !in_runtime,
        TIMED_REGIONS_ONLY => !in_runtime,
        COLLECTIVE_SYMMETRY => true,
        // The comm crate is the loan machinery itself: it mutates payloads
        // before the seal (verifier checksums, fault flips) by design.
        NO_POST_DEPOSIT_MUTATION => !in_comm,
        _ => false,
    }
}

/// Runs every applicable rule over one lexed file.
pub fn check_file(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    if rule_applies(WORLD_RUN_BOUNDARY, path) {
        world_run_boundary(path, lexed, &mut findings);
    }
    if rule_applies(NO_RAW_SPAWN, path) {
        no_raw_spawn(path, lexed, &mut findings);
    }
    if rule_applies(TIMED_REGIONS_ONLY, path) {
        timed_regions_only(path, lexed, &mut findings);
    }
    if rule_applies(COLLECTIVE_SYMMETRY, path) {
        collective_symmetry(path, lexed, &mut findings);
    }
    if rule_applies(NO_POST_DEPOSIT_MUTATION, path) {
        no_post_deposit_mutation(path, lexed, &mut findings);
    }
    // Drop suppressed findings, dedupe repeats on the same line, and order
    // by position for stable output.
    findings.retain(|f| !lexed.allowed(f.line, f.rule));
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    findings
}

fn ident(tok: Option<&Tok>) -> Option<&str> {
    match tok.map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: Option<&Tok>, c: char) -> bool {
    matches!(tok.map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// Matches `World :: run*` anywhere in the stream.
fn world_run_boundary(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if ident(toks.get(i)) != Some("World") {
            continue;
        }
        if !is_punct(toks.get(i + 1), ':') || !is_punct(toks.get(i + 2), ':') {
            continue;
        }
        let Some(name) = ident(toks.get(i + 3)) else {
            continue;
        };
        if name == "run" || name.starts_with("run_") {
            out.push(Finding {
                file: path.to_string(),
                line: toks[i].line,
                rule: WORLD_RUN_BOUNDARY,
                message: format!(
                    "`World::{name}` outside crates/runtime and crates/comm — launch ranks \
                     through `dmbfs_runtime::run_ranks` so every run shares the driver"
                ),
            });
        }
    }
}

/// Matches `thread :: spawn` anywhere in the stream.
fn no_raw_spawn(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if ident(toks.get(i)) != Some("thread") {
            continue;
        }
        if !is_punct(toks.get(i + 1), ':') || !is_punct(toks.get(i + 2), ':') {
            continue;
        }
        if ident(toks.get(i + 3)) == Some("spawn") {
            out.push(Finding {
                file: path.to_string(),
                line: toks[i].line,
                rule: NO_RAW_SPAWN,
                message: "raw `thread::spawn` outside crates/comm and crates/runtime — rank \
                          threads and worker pools must come from the runtime"
                    .to_string(),
            });
        }
    }
}

/// Matches `Instant :: now` lexically inside the parenthesized argument
/// extent of any `run_ranks(…)` call.
fn timed_regions_only(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    let mut i = 0;
    while i < toks.len() {
        if ident(toks.get(i)) != Some("run_ranks") || !is_punct(toks.get(i + 1), '(') {
            i += 1;
            continue;
        }
        // Walk the argument extent, tracking paren depth.
        let mut depth = 1usize;
        let mut j = i + 2;
        while j < toks.len() && depth > 0 {
            match toks[j].kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => depth -= 1,
                TokKind::Ident(ref s)
                    if s == "Instant"
                        && is_punct(toks.get(j + 1), ':')
                        && is_punct(toks.get(j + 2), ':')
                        && ident(toks.get(j + 3)) == Some("now") =>
                {
                    out.push(Finding {
                        file: path.to_string(),
                        line: toks[j].line,
                        rule: TIMED_REGIONS_ONLY,
                        message: "`Instant::now` inside a `run_ranks` rank closure — use \
                                  `ctx.timed(name, ..)` so the region reaches stats and traces"
                            .to_string(),
                    });
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
}

/// A brace frame for the collective-symmetry scan.
struct Frame {
    /// This block's body only runs on a subset of ranks.
    guarded: bool,
    /// The block is the body of an `if`/`else if` whose guard chain is
    /// rank-guarded — its `else` continuation inherits the guard.
    guarded_if: bool,
}

/// True when the token slice looks like a rank comparison: an identifier
/// mentioning `rank` plus a `==` or `!=` operator.
fn is_rank_comparison(toks: &[Tok]) -> bool {
    let mentions_rank = toks
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Ident(s) if s.to_ascii_lowercase().contains("rank")));
    if !mentions_rank {
        return false;
    }
    toks.windows(2).any(|w| {
        matches!(
            (&w[0].kind, &w[1].kind),
            (TokKind::Punct('='), TokKind::Punct('=')) | (TokKind::Punct('!'), TokKind::Punct('='))
        )
    })
}

/// True when a `match` scrutinee selects on a rank value.
fn is_rank_scrutinee(toks: &[Tok]) -> bool {
    toks.iter()
        .any(|t| matches!(&t.kind, TokKind::Ident(s) if s.to_ascii_lowercase().contains("rank")))
}

/// Finds the index of the `{` that opens the block after a condition or
/// scrutinee starting at `from`, skipping over parenthesized/bracketed
/// sub-expressions. Returns `None` when the file ends first.
fn find_block_open(toks: &[Tok], from: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(from) {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth = depth.saturating_sub(1),
            TokKind::Punct('{') if depth == 0 => return Some(j),
            // A `;` at depth 0 means this `if`/`match` never opened a block
            // (e.g. lexing a macro fragment); give up on it.
            TokKind::Punct(';') if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Flags `.collective(` calls inside rank-guarded `if`/`match` blocks.
fn collective_symmetry(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    let mut stack: Vec<Frame> = Vec::new();
    // Set when the block about to open inherits a guard from the `else` of
    // a rank-guarded `if`.
    let mut inherit_else = false;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Ident(s) if s == "if" || s == "match" => {
                let Some(open) = find_block_open(toks, i + 1) else {
                    i += 1;
                    continue;
                };
                let head = &toks[i + 1..open];
                let guarded = if s == "if" {
                    inherit_else || is_rank_comparison(head)
                } else {
                    is_rank_scrutinee(head)
                };
                inherit_else = false;
                stack.push(Frame {
                    guarded,
                    guarded_if: s == "if" && guarded,
                });
                i = open + 1;
            }
            TokKind::Ident(s) if s == "else" => {
                // `else {` of a guarded if: the alternative branch also
                // runs on a rank subset. `else if` is handled by the `if`
                // arm above via `inherit_else`.
                if inherit_else && is_punct(toks.get(i + 1), '{') {
                    stack.push(Frame {
                        guarded: true,
                        guarded_if: true,
                    });
                    inherit_else = false;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokKind::Punct('{') => {
                stack.push(Frame {
                    guarded: false,
                    guarded_if: false,
                });
                inherit_else = false;
                i += 1;
            }
            TokKind::Punct('}') => {
                let closed = stack.pop();
                // An `else` directly after a guarded if-block inherits.
                inherit_else =
                    closed.is_some_and(|f| f.guarded_if) && ident(toks.get(i + 1)) == Some("else");
                i += 1;
            }
            TokKind::Punct('.') => {
                if stack.iter().any(|f| f.guarded) {
                    if let Some(name) = ident(toks.get(i + 1)) {
                        if COLLECTIVES.contains(&name)
                            && is_punct(toks.get(i + 2), '(')
                            && receiver_plausible(toks, i, name)
                        {
                            out.push(Finding {
                                file: path.to_string(),
                                line: toks[i + 1].line,
                                rule: COLLECTIVE_SYMMETRY,
                                message: format!(
                                    "collective `{name}` inside a rank-guarded branch — every \
                                     rank of the group must reach it or the rendezvous hangs; \
                                     if the asymmetry is intentional, annotate with \
                                     `// lint: allow(collective-symmetry)`"
                                ),
                            });
                        }
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// For ambiguous names (`split`, `gather`) the receiver before the `.`
/// must look comm-like — an identifier mentioning `comm` or a call result
/// `)` — so `line.split(',')` never fires.
fn receiver_plausible(toks: &[Tok], dot: usize, name: &str) -> bool {
    if name == EXCHANGE_WAIT {
        if dot == 0 {
            return false;
        }
        return match &toks[dot - 1].kind {
            TokKind::Ident(s) => {
                let l = s.to_ascii_lowercase();
                l.contains("pending") || l.contains("exchange")
            }
            TokKind::Punct(')') => true,
            _ => false,
        };
    }
    if !AMBIGUOUS_COLLECTIVES.contains(&name) {
        return true;
    }
    if dot == 0 {
        return false;
    }
    match &toks[dot - 1].kind {
        TokKind::Ident(s) => s.to_ascii_lowercase().contains("comm"),
        TokKind::Punct(')') => true,
        _ => false,
    }
}

/// Flags `.bytes_mut(` calls on payloads that came back from a `*_wire`
/// collective. Taint flows forward through the file: a `let` binding whose
/// initializer contains a wire-collective call (any identifier ending in
/// `_wire` followed by `(`) — or mentions an already-tainted binding, which
/// carries the taint through `pending.wait()` results, `clone()`s, and
/// `&mut recv[i]` aliases — is wire-received, and mutating it after the
/// board crossing is the use-after-deposit shape the loan path forbids
/// (`WireBuf::bytes_mut` panics on a sealed payload at runtime; this rule
/// catches the pattern at review time).
fn no_post_deposit_mutation(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    let mut tainted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `let [mut] name = <initializer> ;` — taint `name` when the
        // initializer roots at a wire collective or a tainted binding.
        // (Tuple/struct patterns are skipped; the receive idiom binds one
        // name.)
        if ident(toks.get(i)) == Some("let") {
            let mut j = i + 1;
            if ident(toks.get(j)) == Some("mut") {
                j += 1;
            }
            if let Some(name) = ident(toks.get(j)) {
                if is_punct(toks.get(j + 1), '=') && !is_punct(toks.get(j + 2), '=') {
                    let mut depth = 0i64;
                    let mut k = j + 2;
                    let mut taints = false;
                    while k < toks.len() {
                        match &toks[k].kind {
                            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                                depth += 1
                            }
                            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                                depth -= 1
                            }
                            TokKind::Punct(';') if depth <= 0 => break,
                            TokKind::Ident(s)
                                if (s.ends_with("_wire") && is_punct(toks.get(k + 1), '('))
                                    || tainted.iter().any(|t| t == s) =>
                            {
                                taints = true;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if taints && name != "_" {
                        tainted.push(name.to_string());
                    }
                }
            }
            i += 1;
            continue;
        }
        if matches!(&toks[i].kind, TokKind::Punct('.'))
            && ident(toks.get(i + 1)) == Some("bytes_mut")
            && is_punct(toks.get(i + 2), '(')
            && receiver_is_wire_received(toks, i, &tainted)
        {
            out.push(Finding {
                file: path.to_string(),
                line: toks[i + 1].line,
                rule: NO_POST_DEPOSIT_MUTATION,
                message: "`bytes_mut` on a payload received from a wire collective — large \
                          payloads cross the board as `Arc` loans shared with the sender \
                          (the runtime panics on this write); mutate before the deposit, or \
                          copy out with `bytes().to_vec()` (docs/zero-copy.md)"
                    .to_string(),
            });
        }
        i += 1;
    }
}

/// Walks the receiver chain left from the `.` at `dot` — over `[index]`
/// groups, `(call)` groups, and `.field` / `.method` segments — until the
/// root identifier. True when the root is a tainted binding, or the chain
/// itself contains a `*_wire` call (`comm.alltoallv_wire(b)[0].bytes_mut()`).
fn receiver_is_wire_received(toks: &[Tok], dot: usize, tainted: &[String]) -> bool {
    let mut k = dot;
    loop {
        if k == 0 {
            return false;
        }
        match &toks[k - 1].kind {
            TokKind::Punct(']') => match matching_open(toks, k - 1, '[', ']') {
                Some(open) => k = open,
                None => return false,
            },
            TokKind::Punct(')') => match matching_open(toks, k - 1, '(', ')') {
                Some(open) => k = open,
                None => return false,
            },
            TokKind::Ident(s) => {
                if tainted.iter().any(|t| t == s) || s.ends_with("_wire") {
                    return true;
                }
                if k >= 2 && matches!(&toks[k - 2].kind, TokKind::Punct('.')) {
                    k -= 2; // step over `.segment` to its own receiver
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

/// Index of the `open_c` that matches the `close_c` at `close`, scanning
/// backwards over nested groups.
fn matching_open(toks: &[Tok], close: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 1usize;
    let mut k = close;
    while k > 0 {
        k -= 1;
        match &toks[k].kind {
            TokKind::Punct(c) if *c == close_c => depth += 1,
            TokKind::Punct(c) if *c == open_c => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check_file(path, &lex(src))
    }

    #[test]
    fn world_run_fires_outside_the_boundary() {
        let src = "fn main() { let r = World::run(4, |c| c.rank()); }";
        let f = run("crates/bfs/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, WORLD_RUN_BOUNDARY);
        assert_eq!(f[0].line, 1);
        // …and run_verified too, but not inside the comm crate.
        let src2 = "let r = World::run_verified(4, cfg, f);";
        assert_eq!(run("src/main.rs", src2).len(), 1);
        assert!(run("crates/comm/src/world.rs", src2).is_empty());
        assert!(run("crates/runtime/src/lib.rs", src2).is_empty());
    }

    #[test]
    fn raw_spawn_fires_outside_comm_and_runtime() {
        let src = "let h = std::thread::spawn(move || work());";
        let f = run("crates/bfs/src/one_d.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, NO_RAW_SPAWN);
        assert!(run("crates/comm/src/world.rs", src).is_empty());
    }

    #[test]
    fn instant_now_fires_only_inside_run_ranks() {
        let outside = "fn t() { let s = Instant::now(); }";
        assert!(run("crates/bfs/src/one_d.rs", outside).is_empty());
        let inside = "run_ranks(cfg, |ctx| {\n  let t0 = Instant::now();\n  work()\n});";
        let f = run("crates/bfs/src/one_d.rs", inside);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, TIMED_REGIONS_ONLY);
        assert_eq!(f[0].line, 2);
        // The runtime crate implements ctx.timed itself, so it is exempt.
        assert!(run("crates/runtime/src/lib.rs", inside).is_empty());
    }

    #[test]
    fn guarded_collectives_fire_with_else_chains() {
        let src = "\
fn f(comm: &Comm) {
    if comm.rank() == 0 {
        comm.barrier();
    } else if comm.rank() == 1 {
        comm.allreduce(&x, ops::sum);
    } else {
        comm.broadcast(0, &mut y);
    }
}";
        let f = run("crates/bfs/src/lib.rs", src);
        let rules: Vec<(u32, &str)> = f.iter().map(|x| (x.line, x.rule)).collect();
        assert_eq!(
            rules,
            vec![
                (3, COLLECTIVE_SYMMETRY),
                (5, COLLECTIVE_SYMMETRY),
                (7, COLLECTIVE_SYMMETRY)
            ]
        );
    }

    #[test]
    fn match_on_rank_guards_its_arms() {
        let src = "\
match comm.rank() {
    0 => { comm.gatherv(&v, 0); }
    _ => {}
}";
        let f = run("crates/bfs/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn unguarded_and_non_rank_branches_are_clean() {
        let src = "\
fn f(comm: &Comm) {
    comm.barrier();
    if depth == 0 {
        comm.allreduce(&x, ops::sum);
    }
    if comm.rank() == 0 {
        println!(\"root\");
    }
    for part in line.split(',') {
        use_part(part);
    }
}";
        assert!(run("crates/bfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn ambiguous_names_need_a_comm_receiver() {
        let guarded = |body: &str| format!("fn f() {{ if my_rank == 0 {{ {body} }} }}");
        assert!(run("src/lib.rs", &guarded("let p = line.split(',');")).is_empty());
        assert_eq!(
            run("src/lib.rs", &guarded("let sub = comm.split(c, k);")).len(),
            1
        );
        assert_eq!(
            run("src/lib.rs", &guarded("let sub = ctx.comm().split(c, k);")).len(),
            1
        );
    }

    #[test]
    fn split_exchange_pair_is_guarded_like_any_collective() {
        let guarded = |body: &str| format!("fn f() {{ if comm.rank() == 0 {{ {body} }} }}");
        // A rank-guarded start deadlocks the deposit rendezvous.
        assert_eq!(
            run(
                "src/lib.rs",
                &guarded("let pending = comm.ialltoallv_wire(bufs);")
            )
            .len(),
            1
        );
        // …and so does a rank-guarded wait, whether on a binding or chained.
        assert_eq!(run("src/lib.rs", &guarded("pending.wait();")).len(), 1);
        assert_eq!(
            run(
                "src/lib.rs",
                &guarded("let exchange = start(); exchange.wait();")
            )
            .len(),
            1
        );
        assert_eq!(
            run(
                "src/lib.rs",
                &guarded("let bufs = comm.ialltoallv_wire(out).wait();")
            )
            .len(),
            1,
            "chained start+wait on one line dedupes to a single finding"
        );
        // Non-exchange waits never fire: barriers, condvars, children.
        assert!(run("src/lib.rs", &guarded("barrier.wait();")).is_empty());
        assert!(run("src/lib.rs", &guarded("self.cvar.wait(g);")).is_empty());
        assert!(run("src/lib.rs", &guarded("child.wait();")).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_a_finding() {
        let src = "\
fn f(comm: &Comm) {
    if comm.rank() == 0 {
        // lint: allow(collective-symmetry)
        comm.barrier();
        comm.allreduce(&x, ops::sum); // lint: allow(collective-symmetry)
        comm.broadcast(0, &mut y);
    }
}";
        let f = run("crates/bfs/src/lib.rs", src);
        assert_eq!(f.len(), 1, "only the unannotated call survives: {f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn post_deposit_mutation_fires_on_received_payloads() {
        // Direct: mutate an element of the received vector.
        let src = "\
fn f(comm: &Comm, bufs: Vec<WireBuf>) {
    let recv = comm.alltoallv_wire(bufs);
    recv[0].bytes_mut()[0] = 0xFF;
}";
        let f = run("crates/bfs/src/one_d.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (3, NO_POST_DEPOSIT_MUTATION));

        // Taint flows through an alias and through a pending-exchange wait.
        let src = "\
fn g(comm: &Comm, bufs: Vec<WireBuf>) {
    let pending = comm.ialltoallv_wire(bufs);
    let recv = pending.wait();
    let mut theirs = recv[1].clone();
    theirs.bytes_mut().push(0);
}";
        let f = run("crates/bfs/src/one_d.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);

        // Chained receive with no binding at all.
        let src = "fn h(comm: &Comm, b: Vec<WireBuf>) { comm.allgatherv_wire(b)[0].bytes_mut(); }";
        assert_eq!(run("crates/bfs/src/one_d.rs", src).len(), 1);
    }

    #[test]
    fn pre_deposit_mutation_and_comm_internals_are_clean() {
        // Building a payload mutates freely before the collective sees it.
        let src = "\
fn f(comm: &Comm, mut buf: WireBuf) {
    buf.bytes_mut().push(7);
    let _ = comm.alltoallv_wire(vec![buf]);
}";
        assert!(run("crates/bfs/src/one_d.rs", src).is_empty());
        // Reading the received bytes is always fine.
        let src = "\
fn g(comm: &Comm, bufs: Vec<WireBuf>) {
    let recv = comm.alltoallv_wire(bufs);
    decode(recv[0].bytes());
}";
        assert!(run("crates/bfs/src/one_d.rs", src).is_empty());
        // The comm crate seals and fault-flips pre-deposit by design.
        let src =
            "fn s(recv: &mut [WireBuf]) { let r = self.alltoallv_wire(b); r[0].bytes_mut(); }";
        assert!(run("crates/comm/src/comm.rs", src).is_empty());
    }

    #[test]
    fn findings_dedupe_per_line_and_sort() {
        let src = "if rank == 0 { comm.barrier(); comm.barrier(); }\nWorld::run(2, f);";
        let f = run("crates/bfs/src/lib.rs", src);
        let rules: Vec<(u32, &str)> = f.iter().map(|x| (x.line, x.rule)).collect();
        assert_eq!(
            rules,
            vec![(1, COLLECTIVE_SYMMETRY), (2, WORLD_RUN_BOUNDARY)]
        );
    }
}
