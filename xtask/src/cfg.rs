//! A small control-flow IR over the lint lexer, for the collective-
//! schedule checker (`cargo run -p xtask -- schedule`).
//!
//! The parser recovers just enough structure from the token stream to
//! reason about *which collectives a function can emit, in what order*:
//! per-function bodies as statement trees of collective ops, calls
//! (with closure-literal arguments attached for higher-order
//! substitution), branches, loops, and the `let`/assignment spine needed
//! to classify branch conditions as rank-invariant or not. Everything
//! else — arithmetic, types, generics — is deliberately summarized into
//! [`ExprFacts`]: the identifier roots an expression's value derives
//! from, plus whether it mentions a rank source or is rooted at a
//! replicated-result collective.
//!
//! It is not a Rust parser. Where the grammar is ambiguous at token
//! level the parser degrades conservatively (events keep their source
//! order; unknown constructs contribute no events), which is the right
//! failure mode for a checker whose findings gate CI: see
//! `docs/static-analysis.md` for the accepted imprecision.

use crate::lexer::{Lexed, Tok, TokKind};

/// One parsed function (or method) definition.
#[derive(Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when any.
    pub qual: Option<String>,
    /// Parameter names in declaration order (`self` included for
    /// methods; destructured patterns contribute their first identifier).
    pub params: Vec<String>,
    /// Statement tree of the body.
    pub body: Vec<Stmt>,
    /// Line of the `fn` keyword.
    pub line: u32,
}

/// A closure literal: parameters plus body statements. Closure bodies
/// are analyzed in the enclosing function's scope.
#[derive(Debug)]
pub struct Closure {
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// Classification facts about one expression span.
#[derive(Debug, Default, Clone)]
pub struct ExprFacts {
    /// Identifiers the value derives from (receivers and free variables;
    /// method/field names and path constants are excluded).
    pub roots: Vec<String>,
    /// Mentions a rank source: a `.rank()` call or a rank-named root.
    pub rank: bool,
    /// The whole expression is a call to a replicated-result collective
    /// (`allreduce`, `allgather(v)`, `broadcast`): its value is identical
    /// on every rank regardless of the inputs.
    pub repl_root: bool,
}

/// One arm of a branch: pattern-bound names plus the arm body.
#[derive(Debug)]
pub struct Arm {
    pub bound: Vec<String>,
    pub body: Vec<Stmt>,
}

/// IR statements. Expression-level events (collective ops, calls,
/// nested branches in argument position) are flattened into evaluation
/// order around the statement that contains them.
#[derive(Debug)]
pub enum Stmt {
    /// A collective primitive call site (`comm.barrier()`,
    /// `pending.wait()`, …). `name` is the method name as written.
    Op {
        name: String,
        line: u32,
    },
    /// A call that may resolve to another function in the workspace.
    Call {
        name: String,
        /// `Type` of a `Type::name(..)` path call (with `Self` already
        /// resolved to the enclosing impl type).
        qual: Option<String>,
        /// Receiver identifier of a method call (`self`, `comm`, …).
        recv: Option<String>,
        /// Closure-literal arguments by position.
        closures: Vec<(usize, Closure)>,
        /// Facts per top-level argument (closure slots are empty).
        args: Vec<ExprFacts>,
        line: u32,
    },
    /// `if` / `if let` / `match` (with the full `else if` chain folded
    /// into `arms`, and an implicit empty arm when no `else` exists).
    Branch {
        cond: ExprFacts,
        arms: Vec<Arm>,
        line: u32,
    },
    /// `for` / `while` / `while let` / `loop`. `head` is the iterated or
    /// tested expression; `bound` the loop-pattern names.
    Loop {
        head: Option<ExprFacts>,
        bound: Vec<String>,
        body: Vec<Stmt>,
        line: u32,
    },
    /// `let` binding (non-closure). `names` are the pattern-bound names.
    Let {
        names: Vec<String>,
        value: ExprFacts,
        line: u32,
    },
    /// `let name = |..| ..;` — a named local closure.
    LetClosure {
        name: String,
        closure: Closure,
        line: u32,
    },
    /// Mutation of a named local: `x = ..`, `x += ..`, or a method call
    /// on `x` in statement position (potential interior mutation).
    Assign {
        name: String,
        value: ExprFacts,
        line: u32,
    },
    Break {
        line: u32,
    },
    Continue {
        line: u32,
    },
    Return {
        line: u32,
    },
}

/// Method names treated as collective primitives, with the receiver
/// heuristics of the lint rules: `wait` only on a pending/exchange-like
/// receiver, `split`/`gather` only on a comm-like receiver.
const PRIMITIVES: &[&str] = &[
    "barrier",
    "alltoallv",
    "alltoallv_wire",
    "ialltoallv_wire",
    "wait",
    "allgatherv",
    "allgatherv_wire",
    "allgather",
    "allreduce",
    "broadcast",
    "gather",
    "gatherv",
    "scatterv",
    "exscan",
    "reduce_scatter",
    "sendrecv",
    "sendrecv_wire",
    "split",
];

/// Collectives whose result is replicated: every rank computes the same
/// value from them, so data derived from their results is rank-invariant
/// (the `[u64;3]`-allreduce pattern of the direction-optimizing hybrid).
pub const REPLICATED_RESULT: &[&str] = &["allreduce", "allgather", "allgatherv", "broadcast"];

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "in",
    "as", "move", "mut", "ref", "fn", "impl", "pub", "use", "mod", "struct", "enum", "trait",
    "where", "unsafe", "async", "const", "static", "type", "self", "Self", "super", "crate", "dyn",
    "box", "true", "false",
];

fn ident(tok: Option<&Tok>) -> Option<&str> {
    match tok.map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: Option<&Tok>, c: char) -> bool {
    matches!(tok.map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// Index just past the close bracket matching the open bracket at
/// `open` (which must be `(`, `[`, or `{`). Counts all three kinds so
/// nested mixed brackets stay balanced.
fn matching(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Skips a `<..>` generics span starting at `i` (which points at `<`).
/// Returns the index past the matching `>`; bails out at obvious
/// non-generic boundaries so a stray comparison cannot swallow a file.
fn skip_generics(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            TokKind::Punct('(') | TokKind::Punct('{') | TokKind::Punct(';') => return i,
            _ => {}
        }
        j += 1;
    }
    i
}

/// True when `name` looks like a rank-derived identifier (`rank`,
/// `my_rank`, `rank_id`) without catching `ranks` (a replicated count).
fn rank_named(name: &str) -> bool {
    let l = name.to_ascii_lowercase();
    l == "rank" || l.ends_with("_rank") || l.starts_with("rank_")
}

/// Receiver plausibility for the ambiguous primitive names, mirroring
/// the lint rules: `wait` needs a pending/exchange-like receiver,
/// `split`/`gather` a comm-like one (or a call-result receiver).
fn primitive_receiver_ok(toks: &[Tok], dot: usize, name: &str) -> bool {
    let recv = dot.checked_sub(1).map(|k| &toks[k].kind);
    match name {
        "wait" => match recv {
            Some(TokKind::Ident(s)) => {
                let l = s.to_ascii_lowercase();
                l.contains("pending") || l.contains("exchange")
            }
            Some(TokKind::Punct(')')) => true,
            _ => false,
        },
        "split" | "gather" => match recv {
            Some(TokKind::Ident(s)) => s.to_ascii_lowercase().contains("comm"),
            Some(TokKind::Punct(')')) => true,
            _ => false,
        },
        _ => true,
    }
}

/// Parses every function definition in a lexed file, including methods
/// in `impl`/`trait` blocks, nested modules, and nested `fn` items.
pub fn parse_file(lexed: &Lexed) -> Vec<FnDef> {
    let mut out = Vec::new();
    parse_items(&lexed.toks, 0, lexed.toks.len(), None, &mut out);
    out
}

/// Walks items in `toks[lo..hi]` under the impl/trait type `qual`.
fn parse_items(toks: &[Tok], lo: usize, hi: usize, qual: Option<&str>, out: &mut Vec<FnDef>) {
    let mut i = lo;
    // Set while the pending attributes include `#[cfg(test)]`; a module
    // under it holds unit tests, not drivers — skip it wholesale so test
    // helpers never surface as schedule entry points.
    let mut cfg_test = false;
    while i < hi {
        let is_attr = matches!(&toks[i].kind, TokKind::Punct('#'));
        match &toks[i].kind {
            // Attribute: skip `#[ .. ]` / `#![ .. ]`.
            TokKind::Punct('#') => {
                let mut j = i + 1;
                if is_punct(toks.get(j), '!') {
                    j += 1;
                }
                if is_punct(toks.get(j), '[') {
                    let end = matching(toks, j);
                    cfg_test |= toks[j..end.min(toks.len())]
                        .windows(2)
                        .any(|w| ident(Some(&w[0])) == Some("cfg") && is_punct(Some(&w[1]), '('))
                        && toks[j..end.min(toks.len())]
                            .iter()
                            .any(|t| ident(Some(t)) == Some("test"));
                    i = end;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident(s) if s == "fn" => {
                i = parse_fn(toks, i, qual, out);
            }
            TokKind::Ident(s) if s == "impl" || s == "trait" => {
                // Header up to `{`: the subject type is the first type
                // ident after generics — or the ident after `for` in
                // `impl Trait for Type`.
                let mut j = i + 1;
                if is_punct(toks.get(j), '<') {
                    j = skip_generics(toks, j);
                }
                let mut subject: Option<String> = None;
                let mut after_for = false;
                while j < hi && !is_punct(toks.get(j), '{') {
                    if is_punct(toks.get(j), ';') {
                        break; // `impl Trait for Type;`-like degenerate
                    }
                    if let Some(name) = ident(toks.get(j)) {
                        if name == "for" {
                            after_for = true;
                            subject = None;
                        } else if subject.is_none()
                            && (after_for || name.chars().next().is_some_and(|c| c.is_uppercase()))
                        {
                            subject = Some(name.to_string());
                        }
                    }
                    j += 1;
                }
                if is_punct(toks.get(j), '{') {
                    let end = matching(toks, j);
                    parse_items(toks, j + 1, end - 1, subject.as_deref(), out);
                    i = end;
                } else {
                    i = j + 1;
                }
            }
            TokKind::Ident(s) if s == "mod" => {
                // `mod name { items }` — recurse; `mod name;` — skip.
                let mut j = i + 1;
                while j < hi && !is_punct(toks.get(j), '{') && !is_punct(toks.get(j), ';') {
                    j += 1;
                }
                if is_punct(toks.get(j), '{') {
                    let end = matching(toks, j);
                    if !cfg_test {
                        parse_items(toks, j + 1, end - 1, None, out);
                    }
                    i = end;
                } else {
                    i = j + 1;
                }
            }
            // Skip other braced items wholesale so their contents are
            // not misread as functions.
            TokKind::Ident(s) if s == "struct" || s == "enum" || s == "union" => {
                let mut j = i + 1;
                while j < hi && !is_punct(toks.get(j), '{') && !is_punct(toks.get(j), ';') {
                    j += 1;
                }
                i = if is_punct(toks.get(j), '{') {
                    matching(toks, j)
                } else {
                    j + 1
                };
            }
            _ => i += 1,
        }
        if !is_attr {
            cfg_test = false;
        }
    }
}

/// Parses one `fn` starting at index `i` (the `fn` keyword). Appends the
/// definition (and any nested `fn`s) to `out`; returns the index past
/// the body.
fn parse_fn(toks: &[Tok], i: usize, qual: Option<&str>, out: &mut Vec<FnDef>) -> usize {
    let line = toks[i].line;
    let Some(name) = ident(toks.get(i + 1)) else {
        return i + 1;
    };
    let name = name.to_string();
    let mut j = i + 2;
    if is_punct(toks.get(j), '<') {
        j = skip_generics(toks, j);
    }
    if !is_punct(toks.get(j), '(') {
        return j;
    }
    let params_end = matching(toks, j);
    let params = parse_params(&toks[j + 1..params_end - 1]);
    // Signature tail (return type, where clause) up to the body.
    let mut k = params_end;
    while k < toks.len() && !is_punct(toks.get(k), '{') && !is_punct(toks.get(k), ';') {
        k += 1;
    }
    if !is_punct(toks.get(k), '{') {
        return k + 1; // trait method declaration without body
    }
    let end = matching(toks, k);
    let mut body = Vec::new();
    parse_stmts(toks, k + 1, end - 1, qual, out, &mut body);
    out.push(FnDef {
        name,
        qual: qual.map(str::to_string),
        params,
        body,
        line,
    });
    end
}

/// Parameter names from the token span inside a `fn`'s parens: per
/// top-level comma, the first identifier of the pattern (before `:`),
/// with `&`/`mut`/lifetimes stripped; `self` kept as-is.
fn parse_params(toks: &[Tok]) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    let flush = |lo: usize, hi: usize, params: &mut Vec<String>| {
        let mut seen_colon = false;
        for t in &toks[lo..hi] {
            match &t.kind {
                TokKind::Punct(':') => seen_colon = true,
                TokKind::Ident(s) if !seen_colon => {
                    if s == "mut" || s == "ref" {
                        continue;
                    }
                    params.push(s.clone());
                    return;
                }
                _ => {}
            }
        }
    };
    for (k, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct('(')
            | TokKind::Punct('[')
            | TokKind::Punct('{')
            | TokKind::Punct('<') => depth += 1,
            TokKind::Punct(')')
            | TokKind::Punct(']')
            | TokKind::Punct('}')
            | TokKind::Punct('>') => depth -= 1,
            TokKind::Punct(',') if depth == 0 => {
                flush(start, k, &mut params);
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        flush(start, toks.len(), &mut params);
    }
    params
}

/// Pattern-bound names: lowercase-initial identifiers that are not path
/// segments, keywords, or literals. `Some(k)` binds `k`; `Codec::Off`
/// binds nothing.
fn pattern_bound(toks: &[Tok], lo: usize, hi: usize) -> Vec<String> {
    let mut bound = Vec::new();
    for k in lo..hi {
        if let TokKind::Ident(s) = &toks[k].kind {
            if KEYWORDS.contains(&s.as_str()) || s == "_" {
                continue;
            }
            if !s
                .chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_')
            {
                continue;
            }
            // Path segment (`mod::name`) or struct-field shorthand key.
            if k > lo && is_punct(toks.get(k - 1), ':') {
                continue;
            }
            if is_punct(toks.get(k + 1), ':') && is_punct(toks.get(k + 2), ':') {
                continue;
            }
            bound.push(s.clone());
        }
    }
    bound
}

/// Classification facts for the expression span `toks[lo..hi]`.
/// Closure-literal bodies inside the span are included in the scan (their
/// parameters are locally bound, so they are excluded from the roots).
fn expr_facts(toks: &[Tok], lo: usize, hi: usize) -> ExprFacts {
    let mut f = ExprFacts::default();
    // Whole-expression replicated-collective call:
    // `recv.allreduce( .. )` spanning the full range.
    if hi > lo + 3 {
        for k in lo..hi.min(lo + 6) {
            if is_punct(toks.get(k), '.')
                && ident(toks.get(k + 1)).is_some_and(|n| REPLICATED_RESULT.contains(&n))
                && is_punct(toks.get(k + 2), '(')
                && matching(toks, k + 2) >= hi
            {
                f.repl_root = true;
            }
        }
    }
    // Closure parameters bound inside the span do not root data outside.
    let mut shadowed: Vec<String> = Vec::new();
    let mut k = lo;
    while k < hi {
        if let TokKind::Punct('|') = toks[k].kind {
            // Possible closure head: `|a, b|` with a simple param list.
            let mut m = k + 1;
            let mut ok = true;
            let mut names = Vec::new();
            while m < hi && !is_punct(toks.get(m), '|') {
                match &toks[m].kind {
                    TokKind::Ident(s) => {
                        if !KEYWORDS.contains(&s.as_str()) {
                            names.push(s.clone());
                        }
                    }
                    TokKind::Punct(',')
                    | TokKind::Punct('&')
                    | TokKind::Punct('(')
                    | TokKind::Punct(')')
                    | TokKind::Punct(':')
                    | TokKind::Punct('[')
                    | TokKind::Punct(']')
                    | TokKind::Punct('<')
                    | TokKind::Punct('>') => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
                m += 1;
            }
            if ok && m < hi && is_punct(toks.get(m), '|') {
                shadowed.extend(names);
                k = m + 1;
                continue;
            }
        }
        k += 1;
    }
    for k in lo..hi {
        let TokKind::Ident(s) = &toks[k].kind else {
            continue;
        };
        if KEYWORDS.contains(&s.as_str()) {
            if s == "self" && is_punct(toks.get(k + 1), '.') {
                // `self.field` roots at self.
                f.roots.push("self".to_string());
            }
            continue;
        }
        // Method/field name or macro name: not a data root.
        if k > lo && is_punct(toks.get(k - 1), '.') {
            if s == "rank" && is_punct(toks.get(k + 1), '(') {
                f.rank = true;
            }
            continue;
        }
        if is_punct(toks.get(k + 1), '!') {
            continue; // macro
        }
        // Path segments (`Type::CONST`, `mod::func`): replicated
        // compile-time names, not data roots.
        if (k > lo && is_punct(toks.get(k - 1), ':'))
            || (is_punct(toks.get(k + 1), ':') && is_punct(toks.get(k + 2), ':'))
        {
            continue;
        }
        if shadowed.contains(s) {
            continue;
        }
        if rank_named(s) {
            f.rank = true;
            continue;
        }
        f.roots.push(s.clone());
    }
    f.roots.sort();
    f.roots.dedup();
    f
}

/// Parses statements/events in `toks[lo..hi]` (a block body without its
/// braces, or an expression span), appending to `body`. Nested `fn`
/// items are appended to `defs`.
fn parse_stmts(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    qual: Option<&str>,
    defs: &mut Vec<FnDef>,
    body: &mut Vec<Stmt>,
) {
    let mut i = lo;
    while i < hi {
        match &toks[i].kind {
            TokKind::Punct('#') => {
                let mut j = i + 1;
                if is_punct(toks.get(j), '!') {
                    j += 1;
                }
                i = if is_punct(toks.get(j), '[') {
                    matching(toks, j)
                } else {
                    i + 1
                };
            }
            TokKind::Ident(s) if s == "fn" => {
                i = parse_fn(toks, i, qual, defs);
            }
            TokKind::Ident(s) if s == "let" => {
                i = parse_let(toks, i, hi, qual, defs, body);
            }
            TokKind::Ident(s) if s == "if" || s == "match" => {
                i = parse_branch(toks, i, hi, qual, defs, body);
            }
            TokKind::Ident(s) if s == "while" || s == "for" || s == "loop" => {
                i = parse_loop(toks, i, hi, qual, defs, body);
            }
            TokKind::Ident(s) if s == "break" => {
                body.push(Stmt::Break { line: toks[i].line });
                i += 1;
            }
            TokKind::Ident(s) if s == "continue" => {
                body.push(Stmt::Continue { line: toks[i].line });
                i += 1;
            }
            TokKind::Ident(s) if s == "return" => {
                body.push(Stmt::Return { line: toks[i].line });
                i += 1;
            }
            // Free-standing block.
            TokKind::Punct('{') => {
                let end = matching(toks, i);
                parse_stmts(toks, i + 1, end - 1, qual, defs, body);
                i = end;
            }
            _ => {
                i = parse_expr_events(toks, i, hi, qual, defs, body, true);
            }
        }
    }
}

/// Parses a `let` statement at `i`: emits RHS events in evaluation
/// order, then the binding record. Returns the index past the `;`.
fn parse_let(
    toks: &[Tok],
    i: usize,
    hi: usize,
    qual: Option<&str>,
    defs: &mut Vec<FnDef>,
    body: &mut Vec<Stmt>,
) -> usize {
    let line = toks[i].line;
    // Pattern: up to the `=` at depth 0 (ignoring `==`); `let PAT;` and
    // `let PAT: T;` (no initializer) end at `;`.
    let mut depth = 0i64;
    let mut eq = None;
    let mut j = i + 1;
    while j < hi {
        match toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
            // Everything before the initializer's `=` is pattern/type
            // position, where `<=`/`>=` cannot occur at depth 0 — but a
            // generic ascription (`let x: Vec<Vec<u64>> = ..`) puts `>`
            // right before it, so only `==` (and macro `!`) disqualify.
            TokKind::Punct('=')
                if depth == 0
                    && !is_punct(toks.get(j + 1), '=')
                    && !is_punct(toks.get(j.wrapping_sub(1)), '=')
                    && !is_punct(toks.get(j.wrapping_sub(1)), '!') =>
            {
                eq = Some(j);
                break;
            }
            TokKind::Punct(';') if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let Some(eq) = eq else {
        return statement_end(toks, i, hi);
    };
    // Pattern names: strip a `: Type` ascription if present.
    let mut pat_hi = eq;
    let mut d = 0i64;
    for k in i + 1..eq {
        match toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => d += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => d -= 1,
            TokKind::Punct(':') if d == 0 && !is_punct(toks.get(k + 1), ':') => {
                pat_hi = k;
                break;
            }
            _ => {}
        }
    }
    let names = pattern_bound(toks, i + 1, pat_hi);
    let end = statement_end(toks, eq + 1, hi);
    let rhs_hi = if end > eq + 1 && is_punct(toks.get(end - 1), ';') {
        end - 1
    } else {
        end
    };

    // `let name = |..| ..;` — a named closure.
    let mut c = eq + 1;
    if ident(toks.get(c)) == Some("move") {
        c += 1;
    }
    if is_punct(toks.get(c), '|') && names.len() == 1 {
        if let Some((closure, _)) = parse_closure(toks, c, rhs_hi, qual, defs) {
            body.push(Stmt::LetClosure {
                name: names[0].clone(),
                closure,
                line,
            });
            return end;
        }
    }

    // Events inside the initializer, in evaluation order.
    let mut j = eq + 1;
    while j < rhs_hi {
        j = parse_expr_events(toks, j, rhs_hi, qual, defs, body, false);
    }
    body.push(Stmt::Let {
        names,
        value: expr_facts(toks, eq + 1, rhs_hi),
        line,
    });
    end
}

/// Index just past the `;` ending the statement starting at `i` (depth-
/// aware), or past the closing brace of a trailing block expression.
fn statement_end(toks: &[Tok], i: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < hi {
        match toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return j; // enclosing block closed first
                }
            }
            TokKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    hi
}

/// Parses an `if`/`if let`/`match` construct at `i`, folding any `else`
/// chain into one [`Stmt::Branch`]. Returns the index past the construct.
fn parse_branch(
    toks: &[Tok],
    i: usize,
    hi: usize,
    qual: Option<&str>,
    defs: &mut Vec<FnDef>,
    body: &mut Vec<Stmt>,
) -> usize {
    let line = toks[i].line;
    let is_match = ident(toks.get(i)) == Some("match");
    let mut cond = ExprFacts::default();
    let mut arms: Vec<Arm> = Vec::new();
    let mut has_default = false;

    let mut cursor = i;
    loop {
        // cursor points at `if` or `match` (first round) or `if` of an
        // `else if` continuation.
        let kw_is_match = ident(toks.get(cursor)) == Some("match");
        let mut head_lo = cursor + 1;
        let mut bound = Vec::new();
        if !kw_is_match && ident(toks.get(head_lo)) == Some("let") {
            // `if let PAT = expr` — bind the pattern, classify the expr.
            let mut depth = 0i64;
            let mut eq = None;
            let mut k = head_lo + 1;
            while k < hi {
                match toks[k].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                    TokKind::Punct('=') if depth == 0 && !is_punct(toks.get(k + 1), '=') => {
                        eq = Some(k);
                        break;
                    }
                    TokKind::Punct('{') if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if let Some(eq) = eq {
                bound = pattern_bound(toks, head_lo + 1, eq);
                head_lo = eq + 1;
            }
        }
        let Some(open) = find_block_open(toks, head_lo, hi) else {
            return cursor + 1;
        };
        let head = expr_facts(toks, head_lo, open);
        cond.roots.extend(head.roots);
        cond.rank |= head.rank;
        cond.repl_root |= head.repl_root;
        let end = matching(toks, open);

        if kw_is_match {
            parse_match_arms(toks, open + 1, end - 1, qual, defs, &mut arms, &mut cond);
            // A `match` is exhaustive by construction.
            has_default = true;
            cursor = end;
            break;
        }

        let mut arm_body = Vec::new();
        parse_stmts(toks, open + 1, end - 1, qual, defs, &mut arm_body);
        arms.push(Arm {
            bound,
            body: arm_body,
        });
        // else / else if continuation.
        if ident(toks.get(end)) == Some("else") {
            if ident(toks.get(end + 1)) == Some("if") {
                cursor = end + 1;
                continue;
            }
            if is_punct(toks.get(end + 1), '{') {
                let eend = matching(toks, end + 1);
                let mut else_body = Vec::new();
                parse_stmts(toks, end + 2, eend - 1, qual, defs, &mut else_body);
                arms.push(Arm {
                    bound: Vec::new(),
                    body: else_body,
                });
                has_default = true;
                cursor = eend;
                break;
            }
        }
        cursor = end;
        break;
    }
    if !has_default && !is_match {
        arms.push(Arm {
            bound: Vec::new(),
            body: Vec::new(),
        });
    }
    cond.roots.sort();
    cond.roots.dedup();
    body.push(Stmt::Branch { cond, arms, line });
    cursor
}

/// Splits match-arm bodies between `lo..hi` (the inside of the match
/// braces). Guards (`PAT if g =>`) contribute their roots to `cond`.
fn parse_match_arms(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    qual: Option<&str>,
    defs: &mut Vec<FnDef>,
    arms: &mut Vec<Arm>,
    cond: &mut ExprFacts,
) {
    let mut i = lo;
    while i < hi {
        // Pattern span up to `=>` at depth 0.
        let mut depth = 0i64;
        let mut arrow = None;
        let mut j = i;
        while j < hi {
            match toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                TokKind::Punct('=') if depth == 0 && is_punct(toks.get(j + 1), '>') => {
                    arrow = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else {
            break;
        };
        // Guard: `PAT if guard =>`.
        let mut pat_hi = arrow;
        for k in i..arrow {
            if ident(toks.get(k)) == Some("if") {
                let g = expr_facts(toks, k + 1, arrow);
                cond.roots.extend(g.roots);
                cond.rank |= g.rank;
                pat_hi = k;
                break;
            }
        }
        let bound = pattern_bound(toks, i, pat_hi);
        // Arm body: a block, or an expression up to `,` at depth 0.
        let body_lo = arrow + 2;
        let mut arm_body = Vec::new();
        let next = if is_punct(toks.get(body_lo), '{') {
            let end = matching(toks, body_lo);
            parse_stmts(toks, body_lo + 1, end - 1, qual, defs, &mut arm_body);
            // Skip an optional trailing comma.
            if is_punct(toks.get(end), ',') {
                end + 1
            } else {
                end
            }
        } else {
            let mut depth = 0i64;
            let mut k = body_lo;
            while k < hi {
                match toks[k].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                    TokKind::Punct(',') if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            let mut m = body_lo;
            while m < k {
                m = parse_expr_events(toks, m, k, qual, defs, &mut arm_body, false);
            }
            k + 1
        };
        arms.push(Arm {
            bound,
            body: arm_body,
        });
        i = next;
    }
}

/// Parses `while` / `while let` / `for` / `loop` at `i`.
fn parse_loop(
    toks: &[Tok],
    i: usize,
    hi: usize,
    qual: Option<&str>,
    defs: &mut Vec<FnDef>,
    body: &mut Vec<Stmt>,
) -> usize {
    let line = toks[i].line;
    let kw = ident(toks.get(i)).unwrap_or_default().to_string();
    let mut head_lo = i + 1;
    let mut bound = Vec::new();
    if kw == "while" && ident(toks.get(head_lo)) == Some("let") {
        let mut k = head_lo + 1;
        let mut depth = 0i64;
        while k < hi {
            match toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('=') if depth == 0 && !is_punct(toks.get(k + 1), '=') => {
                    bound = pattern_bound(toks, head_lo + 1, k);
                    head_lo = k + 1;
                    break;
                }
                TokKind::Punct('{') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
    } else if kw == "for" {
        // `for PAT in expr {`
        let mut k = head_lo;
        while k < hi && ident(toks.get(k)) != Some("in") {
            k += 1;
        }
        if k < hi {
            bound = pattern_bound(toks, head_lo, k);
            head_lo = k + 1;
        }
    }
    let Some(open) = (if kw == "loop" {
        if is_punct(toks.get(i + 1), '{') {
            Some(i + 1)
        } else {
            None
        }
    } else {
        find_block_open(toks, head_lo, hi)
    }) else {
        return i + 1;
    };
    let head = if kw == "loop" {
        None
    } else {
        Some(expr_facts(toks, head_lo, open))
    };
    let end = matching(toks, open);
    let mut loop_body = Vec::new();
    parse_stmts(toks, open + 1, end - 1, qual, defs, &mut loop_body);
    body.push(Stmt::Loop {
        head,
        bound,
        body: loop_body,
        line,
    });
    end
}

/// First `{` at depth 0 after `from` (skipping bracketed spans), or
/// `None` when a `;` intervenes or the range ends.
fn find_block_open(toks: &[Tok], from: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = from;
    while j < hi {
        match toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => return Some(j),
            TokKind::Punct(';') if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses a closure literal at `i` (pointing at the opening `|`).
/// Returns the closure and the index past its body.
fn parse_closure(
    toks: &[Tok],
    i: usize,
    hi: usize,
    qual: Option<&str>,
    defs: &mut Vec<FnDef>,
) -> Option<(Closure, usize)> {
    let line = toks[i].line;
    // `||` lexes as two `|` puncts.
    let (params, body_lo) = if is_punct(toks.get(i + 1), '|') {
        (Vec::new(), i + 2)
    } else {
        let mut j = i + 1;
        let mut depth = 0i64;
        while j < hi {
            match toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => depth -= 1,
                TokKind::Punct('|') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= hi {
            return None;
        }
        (parse_params(&toks[i + 1..j]), j + 1)
    };
    let mut body = Vec::new();
    let next = if is_punct(toks.get(body_lo), '{') {
        let end = matching(toks, body_lo);
        parse_stmts(toks, body_lo + 1, end - 1, qual, defs, &mut body);
        end
    } else {
        // Expression body: up to `,` / `)` / `;` at depth 0.
        let mut depth = 0i64;
        let mut k = body_lo;
        while k < hi {
            match toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokKind::Punct(',') | TokKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let mut m = body_lo;
        while m < k {
            m = parse_expr_events(toks, m, k, qual, defs, &mut body, false);
        }
        k
    };
    Some((Closure { params, body, line }, next))
}

/// Scans expression tokens from `i`, emitting events (ops, calls,
/// nested control flow) in evaluation order. Returns the index to
/// resume from. When `stmt_position` is set, a leading `recv.method(..)`
/// chain is additionally recorded as a potential mutation of `recv`.
#[allow(clippy::too_many_arguments)]
fn parse_expr_events(
    toks: &[Tok],
    i: usize,
    hi: usize,
    qual: Option<&str>,
    defs: &mut Vec<FnDef>,
    body: &mut Vec<Stmt>,
    stmt_position: bool,
) -> usize {
    if i >= hi {
        return hi;
    }
    match &toks[i].kind {
        TokKind::Ident(s) if s == "if" || s == "match" => {
            return parse_branch(toks, i, hi, qual, defs, body);
        }
        TokKind::Ident(s) if s == "while" || s == "for" || s == "loop" => {
            return parse_loop(toks, i, hi, qual, defs, body);
        }
        TokKind::Ident(s) if s == "break" => {
            body.push(Stmt::Break { line: toks[i].line });
            return i + 1;
        }
        TokKind::Ident(s) if s == "continue" => {
            body.push(Stmt::Continue { line: toks[i].line });
            return i + 1;
        }
        TokKind::Ident(s) if s == "return" => {
            body.push(Stmt::Return { line: toks[i].line });
            return i + 1;
        }
        _ => {}
    }

    // Statement-position assignment: `name = expr ;` / `name += expr ;`.
    if stmt_position {
        if let Some(name) = ident(toks.get(i)) {
            if !KEYWORDS.contains(&name) {
                // Direct assignment.
                let mut k = i + 1;
                // Compound assignment `name op= expr`.
                if matches!(toks.get(k).map(|t| &t.kind), Some(TokKind::Punct(c)) if "+-*/%&|^".contains(*c))
                {
                    k += 1;
                }
                if is_punct(toks.get(k), '=') && !is_punct(toks.get(k + 1), '=') {
                    let end = statement_end(toks, k + 1, hi);
                    let rhs_hi = if end > k + 1 && is_punct(toks.get(end - 1), ';') {
                        end - 1
                    } else {
                        end
                    };
                    let mut j = k + 1;
                    while j < rhs_hi {
                        j = parse_expr_events(toks, j, rhs_hi, qual, defs, body, false);
                    }
                    body.push(Stmt::Assign {
                        name: name.to_string(),
                        value: expr_facts(toks, k + 1, rhs_hi),
                        line: toks[i].line,
                    });
                    return end;
                }
                // Statement-position method call on a local: record as a
                // potential interior mutation (matters only under a
                // divergent guard), then fall through to event scanning.
                // Guard on a true statement boundary — the scan re-enters
                // mid-expression (`bufs[grid.rank_of(..)].push(..)` lands
                // here at `grid`), and a spurious record would let loop
                // fixpoints poison an untouched binding.
                let at_stmt_start = i == 0
                    || is_punct(toks.get(i - 1), ';')
                    || is_punct(toks.get(i - 1), '{')
                    || is_punct(toks.get(i - 1), '}');
                if at_stmt_start
                    && is_punct(toks.get(i + 1), '.')
                    && ident(toks.get(i + 2)).is_some()
                {
                    body.push(Stmt::Assign {
                        name: name.to_string(),
                        value: ExprFacts::default(),
                        line: toks[i].line,
                    });
                }
            }
        }
    }

    // Closure literal in expression position.
    if is_punct(toks.get(i), '|')
        || (ident(toks.get(i)) == Some("move") && is_punct(toks.get(i + 1), '|'))
    {
        let at = if is_punct(toks.get(i), '|') { i } else { i + 1 };
        if let Some((closure, next)) = parse_closure(toks, at, hi, qual, defs) {
            // A bare closure not attached to a call: keep its body events
            // out of the schedule (it is a value, not an execution), but
            // record it as an anonymous local so nothing is lost silently.
            let line = closure.line;
            body.push(Stmt::LetClosure {
                name: String::new(),
                closure,
                line,
            });
            return next;
        }
    }

    // Macro invocation: skip its argument span entirely.
    if ident(toks.get(i)).is_some() && is_punct(toks.get(i + 1), '!') {
        let j = i + 2;
        if matches!(
            toks.get(j).map(|t| &t.kind),
            Some(TokKind::Punct('(')) | Some(TokKind::Punct('[')) | Some(TokKind::Punct('{'))
        ) {
            return matching(toks, j);
        }
        return j;
    }

    // Call detection: `name (`, `name::<T> (`, `recv.name (`, `Type::name (`.
    if let Some(name) = ident(toks.get(i)) {
        if !KEYWORDS.contains(&name) {
            let is_method = i > 0 && is_punct(toks.get(i - 1), '.');
            // Path qualifier directly before: `Qual::name(`.
            let path_qual =
                if i >= 3 && is_punct(toks.get(i - 1), ':') && is_punct(toks.get(i - 2), ':') {
                    ident(toks.get(i - 3)).map(|q| {
                        if q == "Self" {
                            qual.unwrap_or(q).to_string()
                        } else {
                            q.to_string()
                        }
                    })
                } else {
                    None
                };
            let mut after = i + 1;
            if is_punct(toks.get(after), ':')
                && is_punct(toks.get(after + 1), ':')
                && is_punct(toks.get(after + 2), '<')
            {
                after = skip_generics(toks, after + 2);
            }
            if is_punct(toks.get(after), '(') {
                let close = matching(toks, after);
                let line = toks[i].line;
                if is_method
                    && PRIMITIVES.contains(&name)
                    && primitive_receiver_ok(toks, i - 1, name)
                {
                    // Argument events first (evaluation order), then the op.
                    // Closure arguments of a primitive are reduce operators:
                    // their bodies must not communicate, so they are scanned
                    // like ordinary argument expressions.
                    scan_call_args(toks, after + 1, close - 1, qual, defs, body, None);
                    body.push(Stmt::Op {
                        name: name.to_string(),
                        line,
                    });
                    return close;
                }
                let recv = if is_method {
                    i.checked_sub(2)
                        .and_then(|k| ident(toks.get(k)).map(str::to_string))
                } else {
                    None
                };
                let mut closures = Vec::new();
                let args = scan_call_args(
                    toks,
                    after + 1,
                    close - 1,
                    qual,
                    defs,
                    body,
                    Some(&mut closures),
                );
                body.push(Stmt::Call {
                    name: name.to_string(),
                    qual: path_qual,
                    recv,
                    closures,
                    args,
                    line,
                });
                return close;
            }
        }
    }

    i + 1
}

/// Scans the argument span of a call: per top-level argument, emits
/// nested events into `body` and collects [`ExprFacts`]. Closure-literal
/// arguments are parsed and pushed into `closures` (when given) instead
/// of being scanned as events.
#[allow(clippy::too_many_arguments)]
fn scan_call_args(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    qual: Option<&str>,
    defs: &mut Vec<FnDef>,
    body: &mut Vec<Stmt>,
    mut closures: Option<&mut Vec<(usize, Closure)>>,
) -> Vec<ExprFacts> {
    let mut facts = Vec::new();
    let mut depth = 0i64;
    let mut arg_lo = lo;
    let mut arg_idx = 0usize;
    let mut k = lo;
    let flush = |lo: usize,
                 hi: usize,
                 idx: usize,
                 defs: &mut Vec<FnDef>,
                 body: &mut Vec<Stmt>,
                 closures: &mut Option<&mut Vec<(usize, Closure)>>,
                 facts: &mut Vec<ExprFacts>| {
        if lo >= hi {
            return;
        }
        // Closure-literal argument?
        let mut c = lo;
        if ident(toks.get(c)) == Some("move") {
            c += 1;
        }
        if is_punct(toks.get(c), '|') {
            let mut sink = Vec::new();
            if let Some((cl, _)) = parse_closure(toks, c, hi, qual, &mut sink) {
                defs.append(&mut sink);
                if let Some(cs) = closures.as_deref_mut() {
                    cs.push((idx, cl));
                    facts.push(ExprFacts::default());
                    return;
                }
                // Primitive-call operator closure: value-only.
                facts.push(ExprFacts::default());
                return;
            }
        }
        let mut m = lo;
        while m < hi {
            m = parse_expr_events(toks, m, hi, qual, defs, body, false);
        }
        facts.push(expr_facts(toks, lo, hi));
    };
    while k < hi {
        match toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
            TokKind::Punct(',') if depth == 0 => {
                flush(arg_lo, k, arg_idx, defs, body, &mut closures, &mut facts);
                arg_idx += 1;
                arg_lo = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    flush(arg_lo, hi, arg_idx, defs, body, &mut closures, &mut facts);
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnDef> {
        parse_file(&lex(src))
    }

    fn ops(body: &[Stmt]) -> Vec<String> {
        let mut out = Vec::new();
        collect_ops(body, &mut out);
        out
    }

    fn collect_ops(body: &[Stmt], out: &mut Vec<String>) {
        for s in body {
            match s {
                Stmt::Op { name, .. } => out.push(name.clone()),
                Stmt::Branch { arms, .. } => {
                    for a in arms {
                        collect_ops(&a.body, out);
                    }
                }
                Stmt::Loop { body, .. } => collect_ops(body, out),
                Stmt::Call { closures, .. } => {
                    for (_, c) in closures {
                        collect_ops(&c.body, out);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn functions_and_methods_are_parsed_with_params() {
        let src = r#"
            pub fn free(a: u64, mut b: &[u64]) -> u64 { a }
            impl Widget {
                fn method(&self, x: usize) {}
            }
            impl Display for Widget {
                fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result { Ok(()) }
            }
        "#;
        let defs = parse(src);
        let names: Vec<(Option<&str>, &str)> = defs
            .iter()
            .map(|d| (d.qual.as_deref(), d.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                (None, "free"),
                (Some("Widget"), "method"),
                (Some("Widget"), "fmt"),
            ]
        );
        assert_eq!(defs[0].params, vec!["a", "b"]);
        assert_eq!(defs[1].params, vec!["self", "x"]);
    }

    #[test]
    fn collective_ops_are_extracted_in_order() {
        let src = r#"
            fn level(comm: &Comm, bufs: Vec<WireBuf>) {
                let pending = comm.ialltoallv_wire(bufs);
                let recv = pending.wait();
                comm.allreduce(recv.len(), |a, b| a + b);
            }
        "#;
        let defs = parse(src);
        assert_eq!(
            ops(&defs[0].body),
            vec!["ialltoallv_wire", "wait", "allreduce"]
        );
    }

    #[test]
    fn branches_capture_arms_and_condition_roots() {
        let src = r#"
            fn pick(comm: &Comm, bottom_up: bool, bits: WireBuf) {
                if bottom_up {
                    comm.allgatherv_wire(bits);
                } else {
                    comm.alltoallv_wire(vec![bits]);
                }
            }
        "#;
        let defs = parse(src);
        let Stmt::Branch { cond, arms, .. } = &defs[0].body[0] else {
            panic!("expected branch, got {:?}", defs[0].body);
        };
        assert_eq!(cond.roots, vec!["bottom_up"]);
        assert!(!cond.rank);
        assert_eq!(arms.len(), 2);
        assert_eq!(ops(&arms[0].body), vec!["allgatherv_wire"]);
        assert_eq!(ops(&arms[1].body), vec!["alltoallv_wire"]);
    }

    #[test]
    fn rank_conditions_are_flagged() {
        let src = r#"
            fn guarded(comm: &Comm) {
                if comm.rank() == 0 {
                    comm.barrier();
                }
            }
        "#;
        let defs = parse(src);
        let Stmt::Branch { cond, arms, .. } = &defs[0].body[0] else {
            panic!("expected branch");
        };
        assert!(cond.rank, "`.rank()` in the condition must be detected");
        assert_eq!(arms.len(), 2, "implicit empty else arm");
    }

    #[test]
    fn loops_nest_and_loop_carried_ops_are_kept() {
        let src = r#"
            fn overlapped(comm: &Comm, k: usize) {
                let mut pending = comm.ialltoallv_wire(encode(0));
                for c in 1..k {
                    let wire = pending.wait();
                    pending = comm.ialltoallv_wire(encode(c));
                    decode(wire);
                }
                let wire = pending.wait();
            }
        "#;
        let defs = parse(src);
        let body = &defs[0].body;
        assert!(
            body.iter().any(
                |s| matches!(s, Stmt::Let { names, .. } if names == &vec!["pending".to_string()])
            ),
            "pending binding"
        );
        let Some(Stmt::Loop {
            body: lb, bound, ..
        }) = body.iter().find(|s| matches!(s, Stmt::Loop { .. }))
        else {
            panic!("expected loop");
        };
        assert_eq!(bound, &vec!["c".to_string()]);
        assert_eq!(ops(lb), vec!["wait", "ialltoallv_wire"]);
        assert_eq!(
            ops(body),
            vec!["ialltoallv_wire", "wait", "ialltoallv_wire", "wait"]
        );
    }

    #[test]
    fn closure_arguments_attach_to_their_call() {
        let src = r#"
            fn drive(ctx: &RankCtx, source: u64) {
                ctx.timed(source, || {
                    rank_bfs(ctx.comm(), source);
                });
            }
        "#;
        let defs = parse(src);
        let Some(Stmt::Call { name, closures, .. }) = defs[0]
            .body
            .iter()
            .find(|s| matches!(s, Stmt::Call { name, .. } if name == "timed"))
        else {
            panic!("expected timed call");
        };
        assert_eq!(name, "timed");
        assert_eq!(closures.len(), 1);
        assert_eq!(closures[0].0, 1, "closure is the second argument");
        assert!(closures[0]
            .1
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Call { name, .. } if name == "rank_bfs")));
    }

    #[test]
    fn match_arms_split_with_guards_feeding_the_condition() {
        let src = r#"
            fn fold(comm: &Comm, mode: Mode, bufs: Vec<WireBuf>) {
                match mode {
                    Mode::Off => {
                        comm.alltoallv(bufs);
                    }
                    Mode::Wire if fancy => comm.alltoallv_wire(bufs),
                    _ => {}
                }
            }
        "#;
        let defs = parse(src);
        let Stmt::Branch { cond, arms, .. } = &defs[0].body[0] else {
            panic!("expected branch");
        };
        assert!(cond.roots.contains(&"mode".to_string()));
        assert!(cond.roots.contains(&"fancy".to_string()), "guard root");
        assert_eq!(arms.len(), 3);
        assert_eq!(ops(&arms[0].body), vec!["alltoallv"]);
        assert_eq!(ops(&arms[1].body), vec!["alltoallv_wire"]);
        assert!(ops(&arms[2].body).is_empty());
    }

    #[test]
    fn let_bindings_record_names_and_replicated_roots() {
        let src = r#"
            fn decide(comm: &Comm, seed: [u64; 3]) {
                let [a, mut b, c] = comm.allreduce(seed, add3);
                let n = per_rank_len();
            }
        "#;
        let defs = parse(src);
        let lets: Vec<&Stmt> = defs[0]
            .body
            .iter()
            .filter(|s| matches!(s, Stmt::Let { .. }))
            .collect();
        let Stmt::Let { names, value, .. } = lets[0] else {
            unreachable!()
        };
        assert_eq!(names, &vec!["a", "b", "c"]);
        assert!(value.repl_root, "allreduce result is replicated");
        let Stmt::Let { names, value, .. } = lets[1] else {
            unreachable!()
        };
        assert_eq!(names, &vec!["n"]);
        assert!(!value.repl_root);
    }

    #[test]
    fn wait_needs_a_pending_receiver_and_split_a_comm_receiver() {
        let src = r#"
            fn not_ops(s: &str, barrier: &Barrier) {
                let parts = s.split(',');
                barrier.wait();
            }
            fn real_ops(comm: &Comm, pending: PendingExchange) {
                let row_comm = comm.split(0, 1);
                let bufs = pending.wait();
            }
        "#;
        let defs = parse(src);
        assert!(ops(&defs[0].body).is_empty());
        assert_eq!(ops(&defs[1].body), vec!["split", "wait"]);
    }
}
