//! `cargo run -p xtask -- <task>` — workspace maintenance entry point.
//!
//! Tasks:
//! - `lint [root]`: run the rank-safety lint pass over the workspace
//!   (default root: the directory containing this workspace). Prints one
//!   `file:line rule-name: message` per finding and exits non-zero when
//!   any survive.
//! - `schedule [root] [--json]`: run the static collective-schedule
//!   checker. Prints findings lint-style, then the extracted schedule per
//!   driver entry point (indented text, or JSON with `--json`). Exits
//!   non-zero when any finding survives.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(xtask::workspace_root);
            match xtask::lint_workspace(&root) {
                Ok(findings) if findings.is_empty() => {
                    eprintln!("xtask lint: no findings");
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        println!("{f}");
                    }
                    eprintln!(
                        "xtask lint: {} finding{} (suppress a deliberate violation with \
                         `// lint: allow(rule-name)` on or above the offending line)",
                        findings.len(),
                        if findings.len() == 1 { "" } else { "s" }
                    );
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask lint: failed to read workspace sources: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("schedule") => {
            let json = args.iter().any(|a| a == "--json");
            let root = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with("--"))
                .map(PathBuf::from)
                .unwrap_or_else(xtask::workspace_root);
            match xtask::analyze_workspace(&root) {
                Ok(analysis) => {
                    if json {
                        let mut out = String::from("{\"entries\":{");
                        for (i, e) in analysis.entries.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            out.push_str(&format!(
                                "\"{}\":{{\"file\":\"{}\",\"line\":{},\"schedule\":",
                                e.name, e.file, e.line
                            ));
                            xtask::schedule::to_json(&e.schedule, &mut out);
                            out.push('}');
                        }
                        out.push_str("},\"findings\":[");
                        for (i, f) in analysis.findings.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            out.push_str(&format!(
                                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\"}}",
                                f.file, f.line, f.rule
                            ));
                        }
                        out.push_str("]}");
                        println!("{out}");
                    } else {
                        for f in &analysis.findings {
                            println!("{f}");
                        }
                        for e in &analysis.entries {
                            println!("entry {} ({}:{}):", e.name, e.file, e.line);
                            let mut s = String::new();
                            xtask::schedule::render(&e.schedule, 1, &mut s);
                            print!("{s}");
                        }
                    }
                    if analysis.findings.is_empty() {
                        eprintln!(
                            "xtask schedule: no findings, {} entry point{}",
                            analysis.entries.len(),
                            if analysis.entries.len() == 1 { "" } else { "s" }
                        );
                        ExitCode::SUCCESS
                    } else {
                        eprintln!(
                            "xtask schedule: {} finding{} (suppress a deliberate violation \
                             with `// lint: allow(rule-name)`, or prove a branch replicated \
                             with `// schedule: replicated`)",
                            analysis.findings.len(),
                            if analysis.findings.len() == 1 {
                                ""
                            } else {
                                "s"
                            }
                        );
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("xtask schedule: failed to read workspace sources: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint|schedule> [root] [--json]");
            ExitCode::from(2)
        }
    }
}
