//! `cargo run -p xtask -- <task>` — workspace maintenance entry point.
//!
//! Tasks:
//! - `lint [root]`: run the rank-safety lint pass over the workspace
//!   (default root: the directory containing this workspace). Prints one
//!   `file:line rule-name: message` per finding and exits non-zero when
//!   any survive.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(xtask::workspace_root);
            match xtask::lint_workspace(&root) {
                Ok(findings) if findings.is_empty() => {
                    eprintln!("xtask lint: no findings");
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        println!("{f}");
                    }
                    eprintln!(
                        "xtask lint: {} finding{} (suppress a deliberate violation with \
                         `// lint: allow(rule-name)` on or above the offending line)",
                        findings.len(),
                        if findings.len() == 1 { "" } else { "s" }
                    );
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask lint: failed to read workspace sources: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [root]");
            ExitCode::from(2)
        }
    }
}
