//! The static collective-schedule checker (`cargo run -p xtask --
//! schedule`).
//!
//! Built on the control-flow IR of [`crate::cfg`], this pass computes an
//! interprocedural *collective-schedule summary* per function: the
//! ordered symbolic sequence of collectives (kind × wire-ness ×
//! start/wait pairing) each rank can emit, with every branch either
//! proven schedule-equivalent across its arms or proven *decided by
//! replicated data*. The safe-branch rule is the `[u64; 3]`-allreduce
//! pattern of the direction-optimizing hybrid: a branch condition is safe
//! iff it derives from a prior collective's replicated result
//! (`allreduce` / `allgather(v)` / `broadcast`) or from rank-invariant
//! configuration; anything rooted in `.rank()` or rank-named data makes
//! the branch divergent, and divergent arms with different schedules are
//! exactly the silent-deadlock shape the MPI-style matching discipline of
//! Buluç–Madduri (arXiv:1104.4518) forbids.
//!
//! Three reports come out (rule names in [`SCHEDULE_ASYMMETRY`],
//! [`SCHEDULE_UNPAIRED_EXCHANGE`], [`SCHEDULE_RESET_PLACEMENT`]):
//! asymmetric schedules, unpaired `ialltoallv_wire` start/wait pairs
//! (loop-carried rotation included), and a machine-readable schedule per
//! driver entry point — every `run_ranks` rank closure, named by a
//! `// schedule: entry(name)` directive or the enclosing function. The
//! entry schedules feed the dynamic conformance test in `crates/bfs`,
//! which diffs them against the `VerifyBoard` fingerprint sequence a real
//! run produces (see `docs/static-analysis.md`).
//!
//! `crates/comm` is summarized but exempt from findings: it *implements*
//! the collectives, so its internals legitimately branch on rank.

use crate::cfg::{self, Closure, ExprFacts, FnDef, Stmt};
use crate::lexer::{lex, Lexed};
use crate::rules::Finding;
use std::collections::{BTreeSet, HashMap};
use std::path::Path;

/// Rule: every rank must issue the same collective sequence — a branch
/// with schedule-different arms must be decided by replicated data.
pub const SCHEDULE_ASYMMETRY: &str = "schedule-asymmetry";
/// Rule: every `ialltoallv_wire` start must pair with exactly one wait,
/// on every path, including across loop iterations.
pub const SCHEDULE_UNPAIRED_EXCHANGE: &str = "schedule-unpaired-exchange";
/// Rule: a `// schedule: reset` point must sit in straight-line code of
/// its entry (not under a branch or loop) so the static capture window
/// is well defined.
pub const SCHEDULE_RESET_PLACEMENT: &str = "schedule-reset-placement";

/// Marker op: the accounting-reset point (`RankCtx::reset_accounting`);
/// an entry's schedule starts after its last top-level occurrence,
/// mirroring the dynamic capture's `schedule_clear`.
const RESET: &str = "@reset";
/// Marker op: `return` — exits the enclosing function (or rank closure).
/// Stripped at inline boundaries: a callee's `return` resolves inside the
/// callee, whose own per-function check covers internal divergence.
const RETURN: &str = "@return";
/// Marker op: `break` / `continue` — exits the innermost enclosing loop,
/// so it is schedule-relevant only when that loop carries collectives.
const BREAK: &str = "@break";

/// Rank-invariance classification of a value or branch condition.
///
/// A small may-lattice: `div` means possibly rank-divergent, `deps` is
/// the set of enclosing-function parameters the value derives from
/// (resolved through call sites), `unknown` marks roots the dataflow
/// could not see (module constants, statics) — resolved as replicated,
/// because per-rank data can only enter a function through its
/// parameters, `.rank()` calls, or rank-named bindings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Class {
    div: bool,
    deps: u64,
    unknown: bool,
}

impl Class {
    const REPL: Class = Class {
        div: false,
        deps: 0,
        unknown: false,
    };
    const DIV: Class = Class {
        div: true,
        deps: 0,
        unknown: false,
    };
    const UNKNOWN: Class = Class {
        div: false,
        deps: 0,
        unknown: true,
    };

    fn dep(i: usize) -> Class {
        Class {
            div: false,
            deps: 1u64 << i.min(63),
            unknown: false,
        }
    }

    fn join(self, other: Class) -> Class {
        Class {
            div: self.div || other.div,
            deps: self.deps | other.deps,
            unknown: self.unknown || other.unknown,
        }
    }
}

/// A schedule-summary node. Lines are advisory (for reporting) and
/// ignored by equivalence.
#[derive(Clone, Debug)]
pub enum Node {
    /// One collective, named by its dynamic fingerprint kind (plus the
    /// `@reset` / `@exit` markers).
    Op(&'static str, u32),
    Seq(Vec<Node>),
    /// Branch alternatives. `cond` is the joined class of every condition
    /// along the `if`/`else if`/`match` chain.
    Alt {
        arms: Vec<Node>,
        cond: Class,
        line: u32,
    },
    /// Zero-or-more repetitions. `head` is the loop condition's class
    /// (`None` for `loop`).
    Loop {
        body: Box<Node>,
        head: Option<Class>,
        line: u32,
    },
    /// Unresolved call, expanded interprocedurally. `args` are the
    /// argument classes at the site (receiver prepended for methods).
    Call {
        name: String,
        qual: Option<String>,
        has_recv: bool,
        args: Vec<Class>,
        closures: Vec<(usize, Node)>,
        line: u32,
    },
    /// Call through a function parameter (higher-order): substituted with
    /// the closure the caller passed in that position.
    ParamCall(usize, u32),
}

impl Node {
    fn empty() -> Node {
        Node::Seq(Vec::new())
    }

    fn is_empty(&self) -> bool {
        matches!(self, Node::Seq(v) if v.is_empty())
    }
}

/// A driver entry point: a `run_ranks` rank closure, with its expanded
/// schedule (markers stripped, reset applied).
#[derive(Debug)]
pub struct Entry {
    /// `// schedule: entry(name)` argument, or the enclosing function's
    /// name when the directive is absent.
    pub name: String,
    pub file: String,
    pub line: u32,
    pub schedule: Node,
}

struct FnInfo {
    file_idx: usize,
    def: FnDef,
}

struct FileInfo {
    path: String,
    lexed: Lexed,
    /// Findings are suppressed and comm-exempted per file.
    exempt: bool,
}

/// The result of analyzing a workspace or source set.
pub struct Analysis {
    files: Vec<FileInfo>,
    fns: Vec<FnInfo>,
    by_name: HashMap<String, Vec<usize>>,
    by_qual: HashMap<(String, String), usize>,
    /// Raw (pre-entry) summaries, index-aligned with `fns`.
    summaries: Vec<Node>,
    /// Entry closures found during summarization: (fn index, name, line,
    /// unexpanded closure summary).
    raw_entries: Vec<(usize, String, u32, Node)>,
    pub entries: Vec<Entry>,
    pub findings: Vec<Finding>,
}

/// The crates the schedule pass covers; only `src/` trees — tests
/// intentionally provoke asymmetric schedules.
const SCHEDULE_ROOTS: &[&str] = &[
    "crates/bfs/src",
    "crates/comm/src",
    "crates/runtime/src",
    "crates/graph/src",
    "crates/matrix/src",
];

/// Analyzes the workspace rooted at `root` (see `SCHEDULE_ROOTS` for
/// the scan scope).
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut sources = Vec::new();
    for sub in SCHEDULE_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect(&dir, root, &mut sources)?;
        }
    }
    sources.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(analyze_sources(sources))
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Analyzes a set of `(workspace-relative path, source)` pairs. Exposed
/// for the fixture tests.
pub fn analyze_sources(sources: Vec<(String, String)>) -> Analysis {
    let mut a = Analysis {
        files: Vec::new(),
        fns: Vec::new(),
        by_name: HashMap::new(),
        by_qual: HashMap::new(),
        summaries: Vec::new(),
        raw_entries: Vec::new(),
        entries: Vec::new(),
        findings: Vec::new(),
    };
    for (path, src) in sources {
        let lexed = lex(&src);
        let defs = cfg::parse_file(&lexed);
        let file_idx = a.files.len();
        let exempt = path.starts_with("crates/comm/");
        a.files.push(FileInfo {
            path,
            lexed,
            exempt,
        });
        for def in defs {
            let idx = a.fns.len();
            a.by_name.entry(def.name.clone()).or_default().push(idx);
            if let Some(q) = &def.qual {
                a.by_qual.insert((q.clone(), def.name.clone()), idx);
            }
            a.fns.push(FnInfo { file_idx, def });
        }
    }
    // Phase 1: per-function summaries (local dataflow).
    for idx in 0..a.fns.len() {
        let (node, entries) = summarize_fn(&a, idx);
        a.summaries.push(node);
        for (name, line, node) in entries {
            a.raw_entries.push((idx, name, line, node));
        }
    }
    // Phase 2: checks + entry expansion.
    run_checks(&mut a);
    a
}

impl Analysis {
    pub fn entry(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.name == name)
    }

    fn file_of(&self, fn_idx: usize) -> &FileInfo {
        &self.files[self.fns[fn_idx].file_idx]
    }
}

/// Maps a source-level primitive method name to the dynamic fingerprint
/// sequence it produces. `split` fingerprints itself and then delegates
/// to an `allgather` (one `allgatherv` fingerprint); `allgather`
/// delegates to `allgatherv`; `wait` is the exchange completion.
fn fingerprints(method: &str) -> &'static [&'static str] {
    match method {
        "barrier" => &["barrier"],
        "alltoallv" => &["alltoallv"],
        "alltoallv_wire" => &["alltoallv_wire"],
        "ialltoallv_wire" => &["ialltoallv_wire"],
        "wait" => &["ialltoallv_wire_wait"],
        "allgatherv" => &["allgatherv"],
        "allgatherv_wire" => &["allgatherv_wire"],
        "allgather" => &["allgatherv"],
        "allreduce" => &["allreduce"],
        "broadcast" => &["broadcast"],
        "gather" => &["gather"],
        "gatherv" => &["gatherv"],
        "scatterv" => &["scatterv"],
        "exscan" => &["exscan"],
        "reduce_scatter" => &["reduce_scatter"],
        "sendrecv" => &["sendrecv"],
        "sendrecv_wire" => &["sendrecv_wire"],
        "split" => &["split", "allgatherv"],
        _ => &[],
    }
}

// ---------------------------------------------------------------------------
// Phase 1: summarization with local rank-invariance dataflow.
// ---------------------------------------------------------------------------

struct Summarizer<'a> {
    a: &'a Analysis,
    fn_idx: usize,
    lexed: &'a Lexed,
    /// Enclosing `impl` type, for `self.method()` resolution.
    qual: Option<String>,
    /// Local value classes (params seeded as `Dep(i)`).
    env: HashMap<String, Class>,
    /// Named local closures, inlined at their call sites.
    local_closures: HashMap<String, Node>,
    /// Entries discovered in this function.
    entries: Vec<(String, u32, Node)>,
}

fn summarize_fn(a: &Analysis, fn_idx: usize) -> (Node, Vec<(String, u32, Node)>) {
    let info = &a.fns[fn_idx];
    let lexed = &a.files[info.file_idx].lexed;
    let mut s = Summarizer {
        a,
        fn_idx,
        lexed,
        qual: info.def.qual.clone(),
        env: HashMap::new(),
        local_closures: HashMap::new(),
        entries: Vec::new(),
    };
    for (i, p) in info.def.params.iter().enumerate() {
        s.env.insert(p.clone(), Class::dep(i));
    }
    let node = s.block(&info.def.body, Class::REPL);
    (node, s.entries)
}

impl Summarizer<'_> {
    /// Class of an expression from its facts under the current env.
    fn class_of(&self, f: &ExprFacts) -> Class {
        if f.repl_root {
            return Class::REPL;
        }
        let mut c = if f.rank { Class::DIV } else { Class::REPL };
        for root in &f.roots {
            c = c.join(self.class_of_name(root));
        }
        c
    }

    fn class_of_name(&self, name: &str) -> Class {
        if let Some(c) = self.env.get(name) {
            return *c;
        }
        if name.chars().next().is_some_and(|ch| ch.is_uppercase()) {
            return Class::REPL; // type/const path
        }
        Class::UNKNOWN
    }

    /// Summarizes a statement list under branch/loop context `ctx` (the
    /// joined class of every enclosing condition — assignments inherit
    /// it, because *which* value gets assigned depends on the branch).
    fn block(&mut self, stmts: &[Stmt], ctx: Class) -> Node {
        let mut out = Vec::new();
        for stmt in stmts {
            if self.lexed.schedule_directive(stmt_line(stmt), "reset") {
                out.push(Node::Op(RESET, stmt_line(stmt)));
            }
            self.stmt(stmt, ctx, &mut out);
        }
        Node::Seq(out)
    }

    fn stmt(&mut self, stmt: &Stmt, ctx: Class, out: &mut Vec<Node>) {
        match stmt {
            Stmt::Op { name, line } => {
                for &f in fingerprints(name) {
                    out.push(Node::Op(f, *line));
                }
            }
            Stmt::Call {
                name,
                qual,
                recv,
                closures,
                args,
                line,
            } => {
                // A `run_ranks` call with a closure literal is a driver
                // entry point: the closure is the per-rank schedule, and
                // the spawn machinery itself is not modeled (the
                // world-run-boundary lint guarantees this is the only
                // spawn surface).
                if name == "run_ranks" {
                    if let Some((_, c)) = closures.first() {
                        let node = self.closure(c);
                        let ename = self
                            .lexed
                            .schedule_arg(*line, "entry")
                            .unwrap_or_else(|| self.a.fns[self.fn_idx].def.name.clone());
                        self.entries.push((ename, *line, node));
                    }
                    return;
                }
                // Call through a named local closure: inline its summary.
                if recv.is_none() && qual.is_none() {
                    if let Some(n) = self.local_closures.get(name) {
                        out.push(n.clone());
                        return;
                    }
                    // Call through a function parameter (higher-order).
                    if let Some(i) = self.a.fns[self.fn_idx]
                        .def
                        .params
                        .iter()
                        .position(|p| p == name)
                    {
                        out.push(Node::ParamCall(i, *line));
                        return;
                    }
                }
                let mut arg_classes = Vec::new();
                if let Some(r) = recv {
                    arg_classes.push(self.class_of_name(r));
                }
                for f in args {
                    arg_classes.push(self.class_of(f));
                }
                let closures: Vec<(usize, Node)> = closures
                    .iter()
                    .map(|(i, c)| (*i, self.closure(c)))
                    .collect();
                // `self.method()` resolves within the enclosing impl.
                let qual = qual.clone().or_else(|| {
                    (recv.as_deref() == Some("self"))
                        .then(|| self.qual.clone())
                        .flatten()
                });
                out.push(Node::Call {
                    name: name.clone(),
                    qual,
                    has_recv: recv.is_some(),
                    args: arg_classes,
                    closures,
                    line: *line,
                });
            }
            Stmt::Branch { cond, arms, line } => {
                let cond_class = if self.lexed.schedule_directive(*line, "replicated") {
                    Class::REPL
                } else {
                    self.class_of(cond)
                };
                let scrutinee = self.class_of(cond);
                let outer = self.env.clone();
                let mut arm_nodes = Vec::new();
                let mut merged = outer.clone();
                for arm in arms {
                    self.env = outer.clone();
                    for b in &arm.bound {
                        self.env.insert(b.clone(), scrutinee);
                    }
                    arm_nodes.push(self.block(&arm.body, ctx.join(cond_class)));
                    for (k, v) in &self.env {
                        let m = merged.entry(k.clone()).or_insert(*v);
                        *m = m.join(*v);
                    }
                }
                self.env = merged;
                if arm_nodes.iter().all(Node::is_empty) {
                    return;
                }
                out.push(Node::Alt {
                    arms: arm_nodes,
                    cond: cond_class,
                    line: *line,
                });
            }
            Stmt::Loop {
                head,
                bound,
                body,
                line,
            } => {
                let head_class = if self.lexed.schedule_directive(*line, "replicated") {
                    Some(Class::REPL)
                } else {
                    head.as_ref().map(|h| self.class_of(h))
                };
                let hc = head_class.unwrap_or(Class::REPL);
                // Two passes for a loop-carried fixpoint on the env.
                for pass in 0..2 {
                    for b in bound {
                        self.env.insert(b.clone(), hc);
                    }
                    let node = self.block(body, ctx.join(hc));
                    if pass == 1 && !node.is_empty() {
                        out.push(Node::Loop {
                            body: Box::new(node),
                            head: head_class,
                            line: *line,
                        });
                    }
                }
            }
            Stmt::Let { names, value, line } => {
                let c = if self.lexed.schedule_directive(*line, "replicated") {
                    Class::REPL
                } else {
                    self.class_of(value).join(ctx)
                };
                for n in names {
                    self.env.insert(n.clone(), c);
                }
            }
            Stmt::LetClosure { name, closure, .. } => {
                // A `return` inside the closure exits the closure, not
                // the enclosing function; `break`/`continue` stay
                // correctly scoped by their own `Loop` nodes.
                let node = strip_returns(self.closure(closure));
                if !name.is_empty() {
                    self.local_closures.insert(name.clone(), node);
                }
            }
            Stmt::Assign { name, value, line } => {
                let c = if self.lexed.schedule_directive(*line, "replicated") {
                    Class::REPL
                } else {
                    let old = self.class_of_name(name);
                    old.join(self.class_of(value)).join(ctx)
                };
                self.env.insert(name.clone(), c);
            }
            Stmt::Break { line } | Stmt::Continue { line } => {
                out.push(Node::Op(BREAK, *line));
            }
            Stmt::Return { line } => {
                out.push(Node::Op(RETURN, *line));
            }
        }
    }

    /// Summarizes a closure body in the enclosing scope. Closure
    /// parameters are bound as replicated: per-rank data reaching a
    /// closure flows through captures (tracked) or collective results;
    /// the conformance test backstops the approximation.
    fn closure(&mut self, c: &Closure) -> Node {
        let saved: Vec<(String, Option<Class>)> = c
            .params
            .iter()
            .map(|p| (p.clone(), self.env.get(p).copied()))
            .collect();
        for p in &c.params {
            self.env.insert(p.clone(), Class::REPL);
        }
        let node = self.block(&c.body, Class::REPL);
        for (p, old) in saved {
            match old {
                Some(v) => {
                    self.env.insert(p, v);
                }
                None => {
                    self.env.remove(&p);
                }
            }
        }
        node
    }
}

fn stmt_line(stmt: &Stmt) -> u32 {
    match stmt {
        Stmt::Op { line, .. }
        | Stmt::Call { line, .. }
        | Stmt::Branch { line, .. }
        | Stmt::Loop { line, .. }
        | Stmt::Let { line, .. }
        | Stmt::LetClosure { line, .. }
        | Stmt::Assign { line, .. }
        | Stmt::Break { line }
        | Stmt::Continue { line }
        | Stmt::Return { line } => *line,
    }
}

// ---------------------------------------------------------------------------
// Phase 2: interprocedural expansion + checks.
// ---------------------------------------------------------------------------

/// Expansion context: the function whose summary is being expanded, with
/// its parameter classes already resolved to replicated/divergent and the
/// closures substituted for higher-order parameters.
#[derive(Clone)]
struct Ctx {
    /// Resolved class per parameter (true = divergent).
    param_div: Vec<bool>,
    /// Expanded closure bodies per parameter index.
    subst: HashMap<usize, Node>,
}

struct Expander<'a> {
    a: &'a Analysis,
    stack: Vec<usize>,
    findings: BTreeSet<(String, u32, &'static str, String)>,
    /// Memo for demand-driven param resolution: fn -> per-param divergent.
    param_memo: HashMap<usize, Vec<bool>>,
    param_stack: Vec<usize>,
}

fn run_checks(a: &mut Analysis) {
    let mut ex = Expander {
        a,
        stack: Vec::new(),
        findings: BTreeSet::new(),
        param_memo: HashMap::new(),
        param_stack: Vec::new(),
    };
    // Per-function root checks: every function outside crates/comm gets
    // its summary expanded (parameters resolved by joining every call
    // site in the workspace) and checked for divergent-branch asymmetry
    // and unpaired exchanges.
    for idx in 0..ex.a.fns.len() {
        if ex.a.file_of(idx).exempt {
            continue;
        }
        let ctx = Ctx {
            param_div: ex.demand_params(idx),
            subst: HashMap::new(),
        };
        let file = ex.a.file_of(idx).path.clone();
        let expanded = ex.expand(&ex.a.summaries[idx].clone(), &ctx, &file);
        let fn_line = ex.a.fns[idx].def.line;
        ex.check_pairing(&expanded, &file, fn_line);
        ex.check_exits(&expanded, &file, false, false);
    }
    // Entries: expand each rank closure and apply the reset window.
    let mut entries = Vec::new();
    for (fn_idx, name, line, node) in ex.a.raw_entries.clone() {
        let ctx = Ctx {
            param_div: ex.demand_params(fn_idx),
            subst: HashMap::new(),
        };
        let file = ex.a.file_of(fn_idx).path.clone();
        let expanded = ex.expand(&node, &ctx, &file);
        ex.check_pairing(&expanded, &file, line);
        ex.check_exits(&expanded, &file, false, false);
        let schedule = ex.apply_reset(expanded, &file);
        entries.push(Entry {
            name,
            file,
            line,
            schedule: strip_markers(schedule),
        });
    }
    let findings = ex.findings.clone();
    drop(ex);
    a.entries = entries;
    // Resolve suppressions per file, then sort.
    let mut out = Vec::new();
    for (file, line, rule, message) in findings {
        let allowed = a
            .files
            .iter()
            .find(|f| f.path == file)
            .is_some_and(|f| f.lexed.allowed(line, rule));
        if !allowed {
            out.push(Finding {
                file,
                line,
                rule,
                message,
            });
        }
    }
    out.sort_by(|x, y| (&x.file, x.line, x.rule).cmp(&(&y.file, y.line, y.rule)));
    out.dedup();
    a.findings = out;
}

impl Expander<'_> {
    fn report(&mut self, file: &str, line: u32, rule: &'static str, msg: String) {
        self.findings.insert((file.to_string(), line, rule, msg));
    }

    /// Demand-driven parameter resolution: a parameter is divergent iff
    /// some call site anywhere in the workspace passes it rank-divergent
    /// data (transitively through the caller's own parameters). With no
    /// visible call site the parameter resolves replicated — out-of-scope
    /// callers (CLI, tests) pass configuration, and the conformance test
    /// backstops the assumption.
    fn demand_params(&mut self, fn_idx: usize) -> Vec<bool> {
        if let Some(v) = self.param_memo.get(&fn_idx) {
            return v.clone();
        }
        if self.param_stack.contains(&fn_idx) {
            return vec![false; self.a.fns[fn_idx].def.params.len()];
        }
        self.param_stack.push(fn_idx);
        let nparams = self.a.fns[fn_idx].def.params.len();
        let mut div = vec![false; nparams];
        // Walk every summary (and entry closure) looking for call sites
        // that resolve to `fn_idx`.
        let mut sites: Vec<(usize, Vec<Class>, bool)> = Vec::new();
        for caller in 0..self.a.fns.len() {
            collect_sites(
                &self.a.summaries[caller],
                caller,
                fn_idx,
                self.a,
                &mut sites,
            );
        }
        // Entry closures live in their enclosing fn's scope, so call
        // sites inside them resolve through that fn's parameters.
        for (fidx, _, _, node) in &self.a.raw_entries {
            collect_sites(node, *fidx, fn_idx, self.a, &mut sites);
        }
        for (caller, args, has_recv) in sites {
            let caller_div = self.demand_params(caller);
            // Align: callee `self` param consumes the receiver slot.
            let has_self = self.a.fns[fn_idx]
                .def
                .params
                .first()
                .is_some_and(|p| p == "self");
            let offset = match (has_self, has_recv) {
                (true, true) | (false, false) => 0usize,
                // Method without receiver slot or receiver without self:
                // shift by one (Type::method(a) / free fn via method pos).
                (true, false) => 1,
                (false, true) => {
                    // Receiver present but callee has no self: drop it.
                    for (i, c) in args.iter().skip(1).enumerate() {
                        if i < nparams && resolve_class(*c, &caller_div) {
                            div[i] = true;
                        }
                    }
                    continue;
                }
            };
            for (i, c) in args.iter().enumerate() {
                let p = i + offset;
                if p < nparams && resolve_class(*c, &caller_div) {
                    div[p] = true;
                }
            }
        }
        self.param_stack.pop();
        self.param_memo.insert(fn_idx, div.clone());
        div
    }

    /// See [`resolve_in`].
    fn resolve(
        &self,
        name: &str,
        qual: Option<&str>,
        argc: usize,
        caller_file: &str,
    ) -> Option<usize> {
        resolve_in(self.a, name, qual, argc, caller_file)
    }

    fn expand(&mut self, node: &Node, ctx: &Ctx, file: &str) -> Node {
        match node {
            Node::Op(n, l) => Node::Op(n, *l),
            Node::Seq(v) => {
                let out: Vec<Node> = v
                    .iter()
                    .map(|n| self.expand(n, ctx, file))
                    .filter(|n| !n.is_empty())
                    .collect();
                flatten(out)
            }
            Node::ParamCall(i, _) => ctx.subst.get(i).cloned().unwrap_or_else(Node::empty),
            Node::Call {
                name,
                qual,
                has_recv,
                args,
                closures,
                line,
            } => {
                let target = self.resolve(name, qual.as_deref(), args.len(), file);
                // Expand closure arguments in the *caller's* context.
                let expanded_closures: Vec<(usize, Node)> = closures
                    .iter()
                    .map(|(i, n)| (*i, self.expand(n, ctx, file)))
                    .collect();
                let Some(target) = target else {
                    // Unknown callee: assume it invokes each closure
                    // argument once, in order (`pool.install`, iterator
                    // adapters; raw spawns are lint-banned).
                    return flatten(
                        expanded_closures
                            .into_iter()
                            .map(|(_, n)| strip_returns(n))
                            .filter(|n| !n.is_empty())
                            .collect(),
                    );
                };
                if self.stack.contains(&target) {
                    return Node::empty();
                }
                // Parameter classes at this site.
                let has_self = self.a.fns[target]
                    .def
                    .params
                    .first()
                    .is_some_and(|p| p == "self");
                let nparams = self.a.fns[target].def.params.len();
                let offset = match (has_self, *has_recv) {
                    (true, true) | (false, false) => 0usize,
                    (true, false) => 1,
                    (false, true) => 0, // receiver dropped below
                };
                let args_aligned: Vec<Class> = if !has_self && *has_recv {
                    args.iter().skip(1).copied().collect()
                } else {
                    args.to_vec()
                };
                let mut param_div = vec![false; nparams];
                for (i, c) in args_aligned.iter().enumerate() {
                    let p = i + offset;
                    if p < nparams {
                        param_div[p] = self.resolve_ctx(*c, ctx);
                    }
                }
                let mut subst = HashMap::new();
                for (arg_pos, n) in expanded_closures {
                    let p = arg_pos + if has_self && *has_recv { 1 } else { offset };
                    subst.insert(p, strip_returns(n));
                }
                let callee_ctx = Ctx { param_div, subst };
                self.stack.push(target);
                let callee_file = self.a.file_of(target).path.clone();
                let out = self.expand(&self.a.summaries[target].clone(), &callee_ctx, &callee_file);
                self.stack.pop();
                let _ = line;
                // Collectives implemented inside `crates/comm` are
                // internally symmetric by contract (backed by its own
                // tests); neutralize their branch conditions so callers
                // are not charged for comm's rank-dependent internals.
                if self.a.file_of(target).exempt {
                    neutralize(out)
                } else {
                    strip_returns(out)
                }
            }
            Node::Alt { arms, cond, line } => {
                let div = self.resolve_ctx(*cond, ctx);
                let arms: Vec<Node> = arms.iter().map(|n| self.expand(n, ctx, file)).collect();
                // Equivalent arms collapse; the branch is schedule-neutral.
                if arms.iter().all(|n| equivalent(n, &arms[0])) {
                    return arms.into_iter().next().unwrap_or_else(Node::empty);
                }
                if div && !self.a.files.iter().any(|f| f.path == *file && f.exempt) {
                    // Only arms that differ in *collectives* are reported
                    // here; divergent early exits are handled by
                    // check_exits with following-op context.
                    let shapes: Vec<Vec<&'static str>> = arms.iter().map(|n| op_names(n)).collect();
                    if shapes.iter().any(|s| *s != shapes[0]) {
                        self.report(
                            file,
                            *line,
                            SCHEDULE_ASYMMETRY,
                            "branch condition derives from rank-divergent data but its arms \
                             emit different collective schedules; decide the branch with a \
                             replicated value (a prior allreduce/allgather result or \
                             rank-invariant config), or annotate the proof with \
                             `// schedule: replicated`"
                                .to_string(),
                        );
                    }
                }
                Node::Alt {
                    arms,
                    cond: if div { Class::DIV } else { Class::REPL },
                    line: *line,
                }
            }
            Node::Loop { body, head, line } => {
                let body = self.expand(body, ctx, file);
                if body.is_empty() {
                    return Node::empty();
                }
                if let Some(h) = head {
                    if self.resolve_ctx(*h, ctx)
                        && !op_names(&body).is_empty()
                        && !self.a.files.iter().any(|f| f.path == *file && f.exempt)
                    {
                        self.report(
                            file,
                            *line,
                            SCHEDULE_ASYMMETRY,
                            "loop condition derives from rank-divergent data but the body \
                             emits collectives: ranks would run different iteration counts \
                             and the collective schedules diverge"
                                .to_string(),
                        );
                    }
                }
                Node::Loop {
                    body: Box::new(body),
                    head: head.map(|h| {
                        if self.resolve_ctx(h, ctx) {
                            Class::DIV
                        } else {
                            Class::REPL
                        }
                    }),
                    line: *line,
                }
            }
        }
    }

    /// Resolves a class to divergent / replicated under the expansion
    /// context (parameter deps looked up, unknown roots replicated).
    fn resolve_ctx(&mut self, c: Class, ctx: &Ctx) -> bool {
        if c.div {
            return true;
        }
        if c.deps != 0 {
            for i in 0..64 {
                if c.deps & (1 << i) != 0 && ctx.param_div.get(i).copied().unwrap_or(false) {
                    return true;
                }
            }
        }
        false
    }

    /// Divergent early exits: a `return` under a divergent condition is
    /// asymmetric iff collectives follow anywhere later in the function
    /// (including remaining loop iterations); a `break`/`continue` iff
    /// the innermost enclosing loop carries collectives. Either way some
    /// ranks would leave while others rendezvous.
    fn check_exits(&mut self, node: &Node, file: &str, ops_after: bool, loop_ops: bool) {
        match node {
            Node::Op(..) | Node::ParamCall(..) | Node::Call { .. } => {}
            Node::Seq(v) => {
                // Right-to-left: does any real op follow position i?
                let mut follow = vec![ops_after; v.len()];
                let mut acc = ops_after;
                for i in (0..v.len()).rev() {
                    follow[i] = acc;
                    acc = acc || !op_names(&v[i]).is_empty();
                }
                for (i, n) in v.iter().enumerate() {
                    self.check_exits(n, file, follow[i], loop_ops);
                }
            }
            Node::Alt { arms, cond, line } => {
                for a in arms {
                    self.check_exits(a, file, ops_after, loop_ops);
                }
                if *cond == Class::DIV {
                    let exits: Vec<bool> = arms
                        .iter()
                        .map(|a| {
                            (contains_return(a) && (ops_after || loop_ops))
                                || (contains_unscoped_break(a) && loop_ops)
                        })
                        .collect();
                    if exits.iter().any(|e| *e != exits[0]) {
                        self.report(
                            file,
                            *line,
                            SCHEDULE_ASYMMETRY,
                            "rank-divergent branch exits early on some arms while \
                             collectives follow: exiting ranks abandon the rendezvous"
                                .to_string(),
                        );
                    }
                }
            }
            Node::Loop { body, .. } => {
                let body_ops = !op_names(body).is_empty();
                self.check_exits(body, file, ops_after || body_ops, body_ops);
            }
        }
    }

    /// Start/wait pairing over the expanded tree: total balance zero,
    /// zero per loop iteration, equal across branch arms, and never
    /// negative (a wait with nothing in flight).
    fn check_pairing(&mut self, node: &Node, file: &str, fn_line: u32) {
        let (net, min) = self.pairing(node, file);
        if net != 0 {
            self.report(
                file,
                fn_line,
                SCHEDULE_UNPAIRED_EXCHANGE,
                format!(
                    "{} ialltoallv_wire start{} left without a matching wait on this path",
                    net.abs(),
                    if net.abs() == 1 { "" } else { "s" }
                ),
            );
        } else if min < 0 {
            self.report(
                file,
                fn_line,
                SCHEDULE_UNPAIRED_EXCHANGE,
                "a wait can run with no exchange in flight on this path".to_string(),
            );
        }
    }

    /// Returns `(net, min_prefix)` of start(+1)/wait(−1) over the node.
    fn pairing(&mut self, node: &Node, file: &str) -> (i64, i64) {
        match node {
            Node::Op("ialltoallv_wire", _) => (1, 1),
            Node::Op("ialltoallv_wire_wait", _) => (-1, -1),
            Node::Op(..) | Node::ParamCall(..) | Node::Call { .. } => (0, 0),
            Node::Seq(v) => {
                let mut net = 0i64;
                let mut min = 0i64;
                for n in v {
                    let (cn, cm) = self.pairing(n, file);
                    min = min.min(net + cm);
                    net += cn;
                }
                (net, min)
            }
            Node::Alt { arms, line, .. } => {
                let parts: Vec<(i64, i64)> = arms.iter().map(|n| self.pairing(n, file)).collect();
                if parts.iter().any(|(n, _)| *n != parts[0].0) {
                    self.report(
                        file,
                        *line,
                        SCHEDULE_UNPAIRED_EXCHANGE,
                        "branch arms leave different numbers of exchanges in flight".to_string(),
                    );
                }
                let net = parts.first().map(|(n, _)| *n).unwrap_or(0);
                let min = parts.iter().map(|(_, m)| *m).min().unwrap_or(0);
                (net, min)
            }
            Node::Loop { body, line, .. } => {
                let (bn, bm) = self.pairing(body, file);
                if bn != 0 {
                    self.report(
                        file,
                        *line,
                        SCHEDULE_UNPAIRED_EXCHANGE,
                        format!(
                            "each loop iteration changes the in-flight exchange count \
                             by {bn}; iterations must start and wait equally (the \
                             double-buffer rotation waits for the previous start)"
                        ),
                    );
                }
                (0, bm.min(0))
            }
        }
    }

    /// Applies the `@reset` capture window: the schedule starts after the
    /// last top-level reset, mirroring the dynamic `schedule_clear`. A
    /// reset under a branch or loop has no well-defined window and is
    /// reported.
    fn apply_reset(&mut self, node: Node, file: &str) -> Node {
        let seq = match node {
            Node::Seq(v) => v,
            other => vec![other],
        };
        let last = seq.iter().rposition(|n| matches!(n, Node::Op(RESET, _)));
        // Any reset *below* the top level is a placement error.
        for n in &seq {
            if !matches!(n, Node::Op(RESET, _)) {
                if let Some(line) = find_nested_reset(n) {
                    self.report(
                        file,
                        line,
                        SCHEDULE_RESET_PLACEMENT,
                        "accounting reset under a branch or loop: the captured schedule \
                         window is ambiguous; hoist the reset to straight-line code of \
                         the rank closure"
                            .to_string(),
                    );
                }
            }
        }
        match last {
            Some(i) => Node::Seq(seq.into_iter().skip(i + 1).collect()),
            None => Node::Seq(seq),
        }
    }
}

/// Resolves a call to a function index: qualified path, then unique
/// name, then unique parameter-count match, then unique match within the
/// caller's own file. Ambiguity resolves to `None` — hiding a callee's
/// collectives is safer than inlining the wrong function, and the
/// dynamic conformance test backstops the blind spot.
fn resolve_in(
    a: &Analysis,
    name: &str,
    qual: Option<&str>,
    argc: usize,
    caller_file: &str,
) -> Option<usize> {
    if let Some(q) = qual {
        if let Some(&idx) = a.by_qual.get(&(q.to_string(), name.to_string())) {
            return Some(idx);
        }
    }
    let candidates = a.by_name.get(name)?;
    if candidates.len() == 1 {
        return Some(candidates[0]);
    }
    let by_argc: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| a.fns[i].def.params.len() == argc)
        .collect();
    if by_argc.len() == 1 {
        return Some(by_argc[0]);
    }
    let pool = if by_argc.is_empty() {
        candidates.as_slice()
    } else {
        by_argc.as_slice()
    };
    let local: Vec<usize> = pool
        .iter()
        .copied()
        .filter(|&i| a.files[a.fns[i].file_idx].path == caller_file)
        .collect();
    if local.len() == 1 {
        return Some(local[0]);
    }
    None
}

fn collect_sites(
    node: &Node,
    caller: usize,
    target: usize,
    a: &Analysis,
    out: &mut Vec<(usize, Vec<Class>, bool)>,
) {
    match node {
        Node::Seq(v) => {
            for n in v {
                collect_sites(n, caller, target, a, out);
            }
        }
        Node::Alt { arms, .. } => {
            for n in arms {
                collect_sites(n, caller, target, a, out);
            }
        }
        Node::Loop { body, .. } => collect_sites(body, caller, target, a, out),
        Node::Call {
            name,
            qual,
            has_recv,
            args,
            closures,
            ..
        } => {
            let caller_file = &a.files[a.fns[caller].file_idx].path;
            if resolve_in(a, name, qual.as_deref(), args.len(), caller_file) == Some(target) {
                out.push((caller, args.clone(), *has_recv));
            }
            for (_, n) in closures {
                collect_sites(n, caller, target, a, out);
            }
        }
        Node::Op(..) | Node::ParamCall(..) => {}
    }
}

/// Marks every branch/loop condition in the subtree replicated and drops
/// exit markers — applied to expanded `crates/comm` internals, whose
/// rank-dependent control flow is the *implementation* of a symmetric
/// collective, not a schedule hazard for the caller.
fn neutralize(node: Node) -> Node {
    match node {
        Node::Op(RETURN, _) | Node::Op(BREAK, _) => Node::empty(),
        Node::Op(..) | Node::Call { .. } | Node::ParamCall(..) => node,
        Node::Seq(v) => Node::Seq(v.into_iter().map(neutralize).collect()),
        Node::Alt { arms, line, .. } => Node::Alt {
            arms: arms.into_iter().map(neutralize).collect(),
            cond: Class::REPL,
            line,
        },
        Node::Loop { body, line, .. } => Node::Loop {
            body: Box::new(neutralize(*body)),
            head: Some(Class::REPL),
            line,
        },
    }
}

fn resolve_class(c: Class, caller_div: &[bool]) -> bool {
    if c.div {
        return true;
    }
    for i in 0..64 {
        if c.deps & (1u64 << i) != 0 && caller_div.get(i).copied().unwrap_or(false) {
            return true;
        }
    }
    false
}

fn flatten(v: Vec<Node>) -> Node {
    let mut out = Vec::new();
    for n in v {
        match n {
            Node::Seq(inner) => out.extend(match flatten(inner) {
                Node::Seq(x) => x,
                other => vec![other],
            }),
            other => out.push(other),
        }
    }
    if out.len() == 1 {
        out.into_iter().next().unwrap()
    } else {
        Node::Seq(out)
    }
}

/// The real collective ops of a node, in order (markers excluded,
/// branches flattened — used for quick "does this differ" shape checks).
fn op_names(node: &Node) -> Vec<&'static str> {
    let mut out = Vec::new();
    fn walk(n: &Node, out: &mut Vec<&'static str>) {
        match n {
            Node::Op(name, _) if !name.starts_with('@') => out.push(*name),
            Node::Op(..) => {}
            Node::Seq(v) => v.iter().for_each(|n| walk(n, out)),
            Node::Alt { arms, .. } => arms.iter().for_each(|n| walk(n, out)),
            Node::Loop { body, .. } => walk(body, out),
            Node::Call { closures, .. } => closures.iter().for_each(|(_, n)| walk(n, out)),
            Node::ParamCall(..) => {}
        }
    }
    walk(node, &mut out);
    out
}

fn contains_return(node: &Node) -> bool {
    match node {
        Node::Op(RETURN, _) => true,
        Node::Op(..) | Node::ParamCall(..) | Node::Call { .. } => false,
        Node::Seq(v) => v.iter().any(contains_return),
        Node::Alt { arms, .. } => arms.iter().any(contains_return),
        Node::Loop { body, .. } => contains_return(body),
    }
}

/// A `break`/`continue` not consumed by a `Loop` inside this subtree —
/// i.e. one that exits a loop *enclosing* the subtree.
fn contains_unscoped_break(node: &Node) -> bool {
    match node {
        Node::Op(BREAK, _) => true,
        Node::Op(..) | Node::ParamCall(..) | Node::Call { .. } => false,
        Node::Seq(v) => v.iter().any(contains_unscoped_break),
        Node::Alt { arms, .. } => arms.iter().any(contains_unscoped_break),
        Node::Loop { .. } => false,
    }
}

/// Removes `@return` markers — applied when a callee or closure body is
/// inlined: its returns resolve inside it and never escape the boundary.
fn strip_returns(node: Node) -> Node {
    match node {
        Node::Op(RETURN, _) => Node::empty(),
        Node::Op(..) | Node::Call { .. } | Node::ParamCall(..) => node,
        Node::Seq(v) => Node::Seq(v.into_iter().map(strip_returns).collect()),
        Node::Alt { arms, cond, line } => Node::Alt {
            arms: arms.into_iter().map(strip_returns).collect(),
            cond,
            line,
        },
        Node::Loop { body, head, line } => Node::Loop {
            body: Box::new(strip_returns(*body)),
            head,
            line,
        },
    }
}

fn find_nested_reset(node: &Node) -> Option<u32> {
    match node {
        Node::Op(RESET, line) => Some(*line),
        Node::Op(..) | Node::ParamCall(..) | Node::Call { .. } => None,
        Node::Seq(v) => v.iter().find_map(find_nested_reset),
        Node::Alt { arms, .. } => arms.iter().find_map(find_nested_reset),
        Node::Loop { body, .. } => find_nested_reset(body),
    }
}

/// Structural schedule equivalence, ignoring source lines. Markers are
/// significant: an arm that exits early is *not* equivalent to one that
/// falls through (check_exits decides whether that matters).
fn equivalent(a: &Node, b: &Node) -> bool {
    fn eq(a: &Node, b: &Node) -> bool {
        match (a, b) {
            (Node::Op(x, _), Node::Op(y, _)) => x == y,
            (Node::Seq(x), Node::Seq(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(a, b)| eq(a, b))
            }
            (Node::Alt { arms: x, .. }, Node::Alt { arms: y, .. }) => {
                x.len() == y.len() && x.iter().zip(y).all(|(a, b)| eq(a, b))
            }
            (Node::Loop { body: x, .. }, Node::Loop { body: y, .. }) => eq(x, y),
            (Node::Call { name: x, .. }, Node::Call { name: y, .. }) => x == y,
            (Node::ParamCall(x, _), Node::ParamCall(y, _)) => x == y,
            _ => false,
        }
    }
    eq(a, b)
}

/// Removes `@reset`/`@exit` markers and normalizes the tree: sequences
/// flatten, empties drop, single-child sequences unwrap.
pub fn strip_markers(node: Node) -> Node {
    fn walk(n: Node) -> Option<Node> {
        match n {
            Node::Op(name, _) if name.starts_with('@') => None,
            Node::Op(..) => Some(n),
            Node::Seq(v) => {
                let out: Vec<Node> = v.into_iter().filter_map(walk).collect();
                match flatten(out) {
                    n if n.is_empty() => None,
                    n => Some(n),
                }
            }
            Node::Alt { arms, cond, line } => {
                let arms: Vec<Node> = arms
                    .into_iter()
                    .map(|a| walk(a).unwrap_or_else(Node::empty))
                    .collect();
                if arms.iter().all(Node::is_empty) {
                    return None;
                }
                Some(Node::Alt { arms, cond, line })
            }
            Node::Loop { body, head, line } => {
                let body = walk(*body)?;
                Some(Node::Loop {
                    body: Box::new(body),
                    head,
                    line,
                })
            }
            Node::Call { .. } | Node::ParamCall(..) => None,
        }
    }
    walk(node).unwrap_or_else(Node::empty)
}

// ---------------------------------------------------------------------------
// Rendering + conformance matching.
// ---------------------------------------------------------------------------

/// Renders a schedule as indented text.
pub fn render(node: &Node, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        Node::Op(name, _) => {
            out.push_str(&pad);
            out.push_str(name);
            out.push('\n');
        }
        Node::Seq(v) => {
            if v.is_empty() {
                out.push_str(&pad);
                out.push_str("(empty)\n");
            }
            for n in v {
                render(n, indent, out);
            }
        }
        Node::Alt { arms, .. } => {
            out.push_str(&pad);
            out.push_str("alt:\n");
            for (i, a) in arms.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&format!("- arm {i}:\n"));
                render(a, indent + 1, out);
            }
        }
        Node::Loop { body, .. } => {
            out.push_str(&pad);
            out.push_str("loop:\n");
            render(body, indent + 1, out);
        }
        Node::Call { name, .. } => {
            out.push_str(&pad);
            out.push_str(&format!("call {name} (unresolved)\n"));
        }
        Node::ParamCall(i, _) => {
            out.push_str(&pad);
            out.push_str(&format!("call param#{i}\n"));
        }
    }
}

/// Renders a schedule as JSON (hand-rolled — xtask stays
/// zero-dependency). Ops are strings; `{"alt": [..]}` and
/// `{"loop": [..]}` wrap alternatives and repetition.
pub fn to_json(node: &Node, out: &mut String) {
    match node {
        Node::Op(name, _) => {
            out.push('"');
            out.push_str(name);
            out.push('"');
        }
        Node::Seq(v) => {
            out.push('[');
            for (i, n) in v.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                to_json(n, out);
            }
            out.push(']');
        }
        Node::Alt { arms, .. } => {
            out.push_str("{\"alt\":[");
            for (i, a) in arms.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                to_json(a, out);
            }
            out.push_str("]}");
        }
        Node::Loop { body, .. } => {
            out.push_str("{\"loop\":");
            to_json(body, out);
            out.push('}');
        }
        Node::Call { .. } | Node::ParamCall(..) => out.push_str("\"<unresolved>\""),
    }
}

/// Regex-style matching of an observed fingerprint sequence against a
/// schedule: `Alt` = alternation, `Loop` = zero-or-more whole-body
/// repetitions. Returns true iff the whole sequence is consumed.
pub fn matches(node: &Node, observed: &[&str]) -> bool {
    let mut start = BTreeSet::new();
    start.insert(0usize);
    advance(node, &start, observed).contains(&observed.len())
}

fn advance(node: &Node, at: &BTreeSet<usize>, seq: &[&str]) -> BTreeSet<usize> {
    match node {
        Node::Op(name, _) => {
            if name.starts_with('@') {
                return at.clone();
            }
            at.iter()
                .filter(|&&p| p < seq.len() && seq[p] == *name)
                .map(|&p| p + 1)
                .collect()
        }
        Node::Seq(v) => {
            let mut cur = at.clone();
            for n in v {
                if cur.is_empty() {
                    break;
                }
                cur = advance(n, &cur, seq);
            }
            cur
        }
        Node::Alt { arms, .. } => {
            let mut out = BTreeSet::new();
            for a in arms {
                out.extend(advance(a, at, seq));
            }
            out
        }
        Node::Loop { body, .. } => {
            let mut out = at.clone();
            let mut frontier = at.clone();
            loop {
                let next: BTreeSet<usize> = advance(body, &frontier, seq)
                    .difference(&out)
                    .copied()
                    .collect();
                if next.is_empty() {
                    break;
                }
                out.extend(next.iter().copied());
                frontier = next;
            }
            out
        }
        Node::Call { .. } | Node::ParamCall(..) => at.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> Analysis {
        analyze_sources(vec![("crates/bfs/src/t.rs".to_string(), src.to_string())])
    }

    fn rules_at(a: &Analysis) -> Vec<(&str, u32)> {
        a.findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn rank_divergent_branch_with_different_arms_is_flagged() {
        let a = analyze(
            r#"
            fn bad(comm: &Comm, bufs: Vec<Vec<u64>>) {
                if comm.rank() == 0 {
                    comm.alltoallv(bufs);
                } else {
                    comm.barrier();
                }
            }
            "#,
        );
        assert_eq!(rules_at(&a), vec![(SCHEDULE_ASYMMETRY, 3)]);
    }

    #[test]
    fn replicated_decision_from_an_allreduce_is_safe() {
        let a = analyze(
            r#"
            fn good(comm: &Comm, mine: u64, bufs: Vec<WireBuf>) {
                let total = comm.allreduce(mine, |a, b| a + b);
                if total > 4 {
                    comm.allgatherv_wire(bufs.pop().unwrap());
                } else {
                    comm.alltoallv_wire(bufs);
                }
            }
            "#,
        );
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    }

    #[test]
    fn cross_function_divergence_resolves_through_call_sites() {
        let a = analyze(
            r#"
            fn helper(comm: &Comm, flag: bool) {
                if flag {
                    comm.barrier();
                }
            }
            fn caller(comm: &Comm) {
                helper(comm, comm.rank() == 0);
            }
            "#,
        );
        assert_eq!(rules_at(&a), vec![(SCHEDULE_ASYMMETRY, 3)]);
    }

    #[test]
    fn unpaired_start_and_loop_imbalance_are_flagged() {
        let a = analyze(
            r#"
            fn leak(comm: &Comm, bufs: Vec<WireBuf>) {
                let pending = comm.ialltoallv_wire(bufs);
            }
            fn rotate_ok(comm: &Comm, k: usize) {
                let mut pending = comm.ialltoallv_wire(encode(0));
                for c in 1..k {
                    let wire = pending.wait();
                    pending = comm.ialltoallv_wire(encode(c));
                }
                let wire = pending.wait();
            }
            "#,
        );
        assert_eq!(rules_at(&a), vec![(SCHEDULE_UNPAIRED_EXCHANGE, 2)]);
    }

    #[test]
    fn divergent_break_out_of_a_collective_loop_is_flagged() {
        let a = analyze(
            r#"
            fn bad(comm: &Comm, n: usize) {
                for i in 0..n {
                    if comm.rank() == 0 {
                        break;
                    }
                    comm.barrier();
                }
            }
            "#,
        );
        assert_eq!(rules_at(&a), vec![(SCHEDULE_ASYMMETRY, 4)]);
    }

    #[test]
    fn entries_are_extracted_and_match_observed_sequences() {
        let a = analyze(
            r#"
            pub fn drive(cfg: &RunConfig) {
                // schedule: entry(demo)
                let run = run_ranks(cfg, |ctx| {
                    let comm = ctx.comm();
                    loop {
                        comm.alltoallv(vec![]);
                        let done = comm.allreduce(1u64, |a, b| a + b);
                        if done == 0 {
                            break;
                        }
                    }
                });
            }
            "#,
        );
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
        let e = a.entry("demo").expect("entry extracted");
        assert!(matches(
            &e.schedule,
            &["alltoallv", "allreduce", "alltoallv", "allreduce"]
        ));
        assert!(matches(&e.schedule, &[]));
        assert!(!matches(&e.schedule, &["alltoallv"]), "allreduce missing");
    }

    #[test]
    fn reset_truncates_the_captured_window() {
        let a = analyze(
            r#"
            fn drive(cfg: &RunConfig) {
                let run = run_ranks(cfg, |ctx| {
                    let comm = ctx.comm();
                    let sub = comm.split(0, 1);
                    // schedule: reset
                    comm.barrier();
                    comm.alltoallv(vec![]);
                });
            }
            "#,
        );
        let e = a.entry("drive").expect("implicit entry name");
        assert!(matches(&e.schedule, &["barrier", "alltoallv"]));
        assert!(
            !matches(
                &e.schedule,
                &["split", "allgatherv", "barrier", "alltoallv"]
            ),
            "pre-reset collectives must be excluded"
        );
    }

    #[test]
    fn higher_order_timed_pattern_substitutes_the_closure() {
        let a = analyze(
            r#"
            impl RankCtx {
                pub fn timed(&self, detail: u64, f: impl FnOnce() -> R) -> R {
                    self.comm.barrier();
                    let out = f();
                    self.comm.barrier();
                    out
                }
            }
            fn drive(cfg: &RunConfig) {
                let run = run_ranks(cfg, |ctx| {
                    ctx.timed(0, || {
                        ctx.comm().allreduce(1u64, |a, b| a + b);
                    });
                });
            }
            "#,
        );
        let e = a.entry("drive").expect("entry");
        assert!(
            matches(&e.schedule, &["barrier", "allreduce", "barrier"]),
            "schedule: {:?}",
            e.schedule
        );
    }

    #[test]
    fn comm_internals_are_exempt_from_findings() {
        let a = analyze_sources(vec![(
            "crates/comm/src/algorithms.rs".to_string(),
            r#"
            fn ring(comm: &Comm, data: Vec<u64>) {
                if comm.rank() == 0 {
                    comm.sendrecv(1, data);
                }
            }
            "#
            .to_string(),
        )]);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    }

    #[test]
    fn allow_directive_suppresses_a_schedule_finding() {
        let a = analyze(
            r#"
            fn deliberate(comm: &Comm) {
                // lint: allow(schedule-asymmetry)
                if comm.rank() == 0 {
                    comm.barrier();
                }
            }
            "#,
        );
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    }

    #[test]
    fn json_rendering_is_stable() {
        let a = analyze(
            r#"
            fn drive(cfg: &RunConfig) {
                let run = run_ranks(cfg, |ctx| {
                    let comm = ctx.comm();
                    comm.barrier();
                    loop {
                        comm.allreduce(1u64, |a, b| a + b);
                        break;
                    }
                });
            }
            "#,
        );
        let e = a.entry("drive").expect("entry");
        let mut s = String::new();
        to_json(&e.schedule, &mut s);
        assert_eq!(s, r#"["barrier",{"loop":"allreduce"}]"#);
    }
}
