//! A minimal Rust lexer for the lint pass — just enough token structure to
//! pattern-match rule violations without a real parser, while never being
//! fooled by comments, string/char literals, or lifetimes.
//!
//! The lexer also harvests `// lint: allow(rule-name)` directives from
//! comments. A trailing allow suppresses its rule on its own line only; a
//! standalone allow (comment-only line) covers the *statement or block*
//! that starts on the next code line — through its terminating `;` or the
//! matching close brace — and nothing beyond it (see
//! `docs/verification.md`).
//!
//! `// schedule: …` directives for the collective-schedule checker ride
//! the same channel (see `docs/static-analysis.md`): `entry(name)` marks
//! a driver entry point, `replicated` asserts a binding or branch
//! condition is rank-invariant, `reset` marks the point where dynamic
//! schedule capture restarts.

use std::collections::{HashMap, HashSet};

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token payload.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
}

/// The token classes the rules need. Literals carry no payload — the rules
/// only care that they are not identifiers or punctuation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Numeric literal.
    Num,
    /// String (including raw/byte) literal.
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime (`'a`), distinguished from char literals.
    Lifetime,
}

/// Lexer output: the token stream plus the allow-directives by line.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// `line -> rules` allowed via `// lint: allow(rule)` comments.
    pub allows: HashMap<u32, HashSet<String>>,
    /// Lines that carry at least one code token — an allow-directive on a
    /// code line is a trailing comment and covers only that line.
    pub code_lines: HashSet<u32>,
    /// Resolved extent of each allow-directive: `(first, last)` source
    /// lines it suppresses (inclusive). Trailing allows cover their own
    /// line; standalone allows cover the following statement/block.
    pub allow_extents: Vec<(u32, u32, HashSet<String>)>,
    /// `line -> directive body` for `// schedule: …` comments, e.g.
    /// `entry(bfs1d)`, `replicated`, `reset`.
    pub schedules: HashMap<u32, Vec<String>>,
}

impl Lexed {
    /// True when `rule` is suppressed at `line`: the line falls inside the
    /// extent of an allow-directive naming `rule` (or `all`). A trailing
    /// allow's extent is its own line; a standalone allow's extent is the
    /// statement or block beginning on the next code line — never the
    /// whole file.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allow_extents.iter().any(|(first, last, rules)| {
            line >= *first && line <= *last && (rules.contains(rule) || rules.contains("all"))
        })
    }

    /// True when a `// schedule: <directive>` comment covers `line` — on
    /// the line itself (trailing) or standing alone directly above,
    /// skipping over further comment-only lines.
    pub fn schedule_directive(&self, line: u32, directive: &str) -> bool {
        if self
            .schedules
            .get(&line)
            .is_some_and(|ds| ds.iter().any(|d| d == directive))
        {
            return true;
        }
        // Walk up over comment-only lines (doc comments, stacked
        // directives) to find a standalone directive above.
        let mut l = line;
        while l > 1 && !self.code_lines.contains(&(l - 1)) {
            l -= 1;
            if self
                .schedules
                .get(&l)
                .is_some_and(|ds| ds.iter().any(|d| d == directive))
            {
                return true;
            }
        }
        false
    }

    /// The argument of a `schedule: <name>(<arg>)` directive covering
    /// `line` (same resolution as [`Lexed::schedule_directive`]).
    pub fn schedule_arg(&self, line: u32, name: &str) -> Option<String> {
        let pick = |l: u32| {
            self.schedules.get(&l).and_then(|ds| {
                ds.iter().find_map(|d| {
                    d.strip_prefix(name)
                        .and_then(|r| r.trim().strip_prefix('('))
                        .and_then(|r| r.trim_end().strip_suffix(')'))
                        .map(|r| r.trim().to_string())
                })
            })
        };
        if let Some(a) = pick(line) {
            return Some(a);
        }
        let mut l = line;
        while l > 1 && !self.code_lines.contains(&(l - 1)) {
            l -= 1;
            if let Some(a) = pick(l) {
                return Some(a);
            }
        }
        None
    }
}

/// Computes the line extent each allow-directive covers. A trailing allow
/// (on a code line) covers exactly that line. A standalone allow covers
/// the statement or block starting on the next code line: tokens from
/// there through the first `;` at bracket depth 0, or — when a brace
/// opens first — through its matching `}` (so one directive above an
/// `if`/`match`/loop covers the whole construct, and nothing after it).
fn resolve_allow_extents(
    toks: &[Tok],
    allows: &HashMap<u32, HashSet<String>>,
    code_lines: &HashSet<u32>,
) -> Vec<(u32, u32, HashSet<String>)> {
    let mut extents = Vec::new();
    let mut lines: Vec<&u32> = allows.keys().collect();
    lines.sort();
    for &line in lines {
        let rules = allows[&line].clone();
        if code_lines.contains(&line) {
            extents.push((line, line, rules));
            continue;
        }
        // Standalone: find the first token past `line`, then walk to the
        // end of the statement/block it opens.
        let Some(start) = toks.iter().position(|t| t.line > line) else {
            continue; // directive at EOF covers nothing
        };
        let mut depth = 0i64;
        let mut opened_brace = false;
        let mut last = toks[start].line;
        for (k, t) in toks.iter().enumerate().skip(start) {
            last = t.line;
            match t.kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct('{') => {
                    depth += 1;
                    opened_brace = true;
                }
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if opened_brace && depth <= 0 {
                        // An `else` continuation keeps the statement going
                        // (`if … {…} else {…}` is one extent).
                        let continues = matches!(
                            toks.get(k + 1).map(|n| &n.kind),
                            Some(TokKind::Ident(s)) if s == "else"
                        );
                        if !continues {
                            break;
                        }
                    }
                }
                TokKind::Punct(';') if depth <= 0 => break,
                _ => {}
            }
            // A close brace above the statement's own depth ends the
            // enclosing block: the statement ends with it.
            if depth < 0 {
                break;
            }
        }
        extents.push((toks[start].line, last, rules));
    }
    extents
}

/// Parses a line comment body for `lint: allow(rule-a, rule-b)` or a
/// `schedule: <directive>` for the collective-schedule checker.
fn parse_allow_directive(
    body: &str,
    line: u32,
    allows: &mut HashMap<u32, HashSet<String>>,
    schedules: &mut HashMap<u32, Vec<String>>,
) {
    let body = body.trim();
    if let Some(rest) = body.strip_prefix("schedule:") {
        let rest = rest.trim();
        if !rest.is_empty() {
            schedules.entry(line).or_default().push(rest.to_string());
        }
        return;
    }
    let Some(rest) = body.strip_prefix("lint:") else {
        return;
    };
    let rest = rest.trim();
    let Some(inner) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    else {
        return;
    };
    let entry = allows.entry(line).or_default();
    for rule in inner.split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            entry.insert(rule.to_string());
        }
    }
}

/// Lexes `src`, stripping comments and literals (see module docs).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut allows = HashMap::new();
    let mut schedules = HashMap::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let bump_lines = |s: &[char], from: usize, to: usize, line: &mut u32| {
        *line += s[from..to].iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < chars.len() {
        let c = chars[i];
        // Line comment (also the allow-directive channel).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            let body: String = chars[start..j].iter().collect();
            parse_allow_directive(&body, line, &mut allows, &mut schedules);
            i = j;
            continue;
        }
        // Block comment, nested per Rust.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            let mut j = i + 2;
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let tok_line = line;
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote ('a, 'static). A char
            // like 'x' has a closing quote right after one character.
            let is_lifetime = matches!(chars.get(i + 1), Some(ch) if ch.is_alphabetic() || *ch == '_')
                && chars.get(i + 2) != Some(&'\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    line,
                });
                i = j;
                continue;
            }
            let tok_line = line;
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => {
                        j += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
            }
            toks.push(Tok {
                kind: TokKind::Char,
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Identifier/keyword — with raw/byte string detection at the head
        // (r"..", r#".."#, b"..", br#".."#).
        if c.is_alphabetic() || c == '_' {
            if let Some(end) = raw_or_byte_string_end(&chars, i) {
                let tok_line = line;
                bump_lines(&chars, i, end, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    line: tok_line,
                });
                i = end;
                continue;
            }
            let start = i;
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident(chars[start..j].iter().collect()),
                line,
            });
            i = j;
            continue;
        }
        // Number: consume the alphanumeric body (handles 0x.., 1_000, 1e9
        // suffixes); a `.` that follows becomes punctuation, which is fine
        // for these rules and keeps `0..n` ranges intact.
        if c.is_ascii_digit() {
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                line,
            });
            i = j;
            continue;
        }
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct(c),
            line,
        });
        i += 1;
    }

    let code_lines: HashSet<u32> = toks.iter().map(|t| t.line).collect();
    let allow_extents = resolve_allow_extents(&toks, &allows, &code_lines);
    Lexed {
        toks,
        allows,
        code_lines,
        allow_extents,
        schedules,
    }
}

/// When position `i` starts a raw or byte string (`r"`, `r#"`, `br##"`,
/// `b"`), returns the index just past its closing quote.
fn raw_or_byte_string_end(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    // Optional `b`, then optional `r`.
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    if j == i {
        return None; // neither prefix: a plain identifier
    }
    let mut hashes = 0usize;
    if raw {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) != Some(&'"') {
        return None; // `b`/`r` was just the start of an identifier
    }
    j += 1;
    if !raw {
        // Byte string: same escape rules as a plain string.
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 2,
                '"' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(chars.len());
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    while j < chars.len() {
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(chars.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // World::run in a comment
            /* thread::spawn in /* a nested */ block */
            let s = "World::run(2, f)";
            let r = r#"thread::spawn"#;
            let b = b"Instant::now";
            real_ident();
        "##;
        assert_eq!(
            idents(src),
            vec!["let", "s", "let", "r", "let", "b", "real_ident"]
        );
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let l = lex(src);
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Char));
        assert!(idents(src).contains(&"str".to_string()));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/* x\ny */\nb\n\"s\nt\"\nc";
        let l = lex(src);
        let lines: Vec<(String, u32)> = l
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 4), ("c".into(), 7)]
        );
    }

    #[test]
    fn allow_directives_attach_to_their_line() {
        let src = "x();\n// lint: allow(collective-symmetry)\ny(); // lint: allow(no-raw-spawn, world-run-boundary)\n";
        let l = lex(src);
        assert!(l.allowed(3, "collective-symmetry"), "line below the allow");
        assert!(l.allowed(3, "no-raw-spawn"), "trailing comment");
        assert!(l.allowed(3, "world-run-boundary"));
        assert!(!l.allowed(1, "collective-symmetry"));
        assert!(!l.allowed(3, "timed-regions-only"));
        assert!(
            !l.allowed(4, "no-raw-spawn"),
            "a trailing allow covers only its own line"
        );
    }

    #[test]
    fn standalone_allow_covers_the_following_block_and_no_further() {
        let src = "\
a();
// lint: allow(collective-symmetry)
if comm.rank() == 0 {
    comm.barrier();
    comm.broadcast(
        0, y);
}
comm.gatherv(&[x], 0);
";
        let l = lex(src);
        for covered in 3..=7 {
            assert!(
                l.allowed(covered, "collective-symmetry"),
                "line {covered} is inside the annotated block"
            );
        }
        assert!(
            !l.allowed(8, "collective-symmetry"),
            "the allow must not leak past its block"
        );
        assert!(!l.allowed(1, "collective-symmetry"));
    }

    #[test]
    fn standalone_allow_covers_a_multiline_statement_to_its_semicolon() {
        let src = "\
// lint: allow(no-post-deposit-mutation)
recv[0]
    .bytes_mut()[0] = 0xFF;
recv[1].bytes_mut()[0] = 0xFF;
";
        let l = lex(src);
        assert!(l.allowed(2, "no-post-deposit-mutation"));
        assert!(l.allowed(3, "no-post-deposit-mutation"));
        assert!(
            !l.allowed(4, "no-post-deposit-mutation"),
            "the next statement is outside the extent"
        );
    }

    #[test]
    fn allow_never_applies_file_wide() {
        // A directive at the very top of the file covers exactly the first
        // statement, not everything after it.
        let src = "// lint: allow(all)\nfirst();\nsecond();\n";
        let l = lex(src);
        assert!(l.allowed(2, "anything"));
        assert!(
            !l.allowed(3, "anything"),
            "allow(all) is still statement-scoped"
        );
    }

    #[test]
    fn schedule_directives_are_harvested_with_arguments() {
        let src = "\
// schedule: entry(bfs1d)
let r = run_ranks(cfg, f);
let n = x.len(); // schedule: replicated
// schedule: replicated
// (the condition is a pure function of allreduced counts)
let flag = decide();
";
        let l = lex(src);
        assert_eq!(l.schedule_arg(2, "entry").as_deref(), Some("bfs1d"));
        assert_eq!(l.schedule_arg(3, "entry"), None);
        assert!(l.schedule_directive(3, "replicated"), "trailing form");
        assert!(
            l.schedule_directive(6, "replicated"),
            "standalone form skips comment-only lines"
        );
        assert!(!l.schedule_directive(2, "replicated"));
    }
}
