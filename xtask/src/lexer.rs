//! A minimal Rust lexer for the lint pass — just enough token structure to
//! pattern-match rule violations without a real parser, while never being
//! fooled by comments, string/char literals, or lifetimes.
//!
//! The lexer also harvests `// lint: allow(rule-name)` directives from
//! comments; a finding is suppressed when an allow for its rule sits on
//! the same line or the line directly above (see `docs/verification.md`).

use std::collections::{HashMap, HashSet};

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token payload.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
}

/// The token classes the rules need. Literals carry no payload — the rules
/// only care that they are not identifiers or punctuation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Numeric literal.
    Num,
    /// String (including raw/byte) literal.
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime (`'a`), distinguished from char literals.
    Lifetime,
}

/// Lexer output: the token stream plus the allow-directives by line.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// `line -> rules` allowed via `// lint: allow(rule)` comments.
    pub allows: HashMap<u32, HashSet<String>>,
    /// Lines that carry at least one code token — an allow-directive on a
    /// code line is a trailing comment and covers only that line.
    pub code_lines: HashSet<u32>,
}

impl Lexed {
    /// True when `rule` is suppressed at `line` — an allow-directive as a
    /// trailing comment on the same line, or standing alone (comment-only
    /// line) directly above.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        let hit = |l: u32| {
            self.allows
                .get(&l)
                .is_some_and(|rules| rules.contains(rule) || rules.contains("all"))
        };
        hit(line) || (line > 1 && hit(line - 1) && !self.code_lines.contains(&(line - 1)))
    }
}

/// Parses a line comment body for `lint: allow(rule-a, rule-b)`.
fn parse_allow_directive(body: &str, line: u32, allows: &mut HashMap<u32, HashSet<String>>) {
    let body = body.trim();
    let Some(rest) = body.strip_prefix("lint:") else {
        return;
    };
    let rest = rest.trim();
    let Some(inner) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    else {
        return;
    };
    let entry = allows.entry(line).or_default();
    for rule in inner.split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            entry.insert(rule.to_string());
        }
    }
}

/// Lexes `src`, stripping comments and literals (see module docs).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut allows = HashMap::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let bump_lines = |s: &[char], from: usize, to: usize, line: &mut u32| {
        *line += s[from..to].iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < chars.len() {
        let c = chars[i];
        // Line comment (also the allow-directive channel).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            let body: String = chars[start..j].iter().collect();
            parse_allow_directive(&body, line, &mut allows);
            i = j;
            continue;
        }
        // Block comment, nested per Rust.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            let mut j = i + 2;
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let tok_line = line;
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote ('a, 'static). A char
            // like 'x' has a closing quote right after one character.
            let is_lifetime = matches!(chars.get(i + 1), Some(ch) if ch.is_alphabetic() || *ch == '_')
                && chars.get(i + 2) != Some(&'\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    line,
                });
                i = j;
                continue;
            }
            let tok_line = line;
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => {
                        j += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
            }
            toks.push(Tok {
                kind: TokKind::Char,
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Identifier/keyword — with raw/byte string detection at the head
        // (r"..", r#".."#, b"..", br#".."#).
        if c.is_alphabetic() || c == '_' {
            if let Some(end) = raw_or_byte_string_end(&chars, i) {
                let tok_line = line;
                bump_lines(&chars, i, end, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    line: tok_line,
                });
                i = end;
                continue;
            }
            let start = i;
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident(chars[start..j].iter().collect()),
                line,
            });
            i = j;
            continue;
        }
        // Number: consume the alphanumeric body (handles 0x.., 1_000, 1e9
        // suffixes); a `.` that follows becomes punctuation, which is fine
        // for these rules and keeps `0..n` ranges intact.
        if c.is_ascii_digit() {
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                line,
            });
            i = j;
            continue;
        }
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct(c),
            line,
        });
        i += 1;
    }

    let code_lines = toks.iter().map(|t| t.line).collect();
    Lexed {
        toks,
        allows,
        code_lines,
    }
}

/// When position `i` starts a raw or byte string (`r"`, `r#"`, `br##"`,
/// `b"`), returns the index just past its closing quote.
fn raw_or_byte_string_end(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    // Optional `b`, then optional `r`.
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    if j == i {
        return None; // neither prefix: a plain identifier
    }
    let mut hashes = 0usize;
    if raw {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) != Some(&'"') {
        return None; // `b`/`r` was just the start of an identifier
    }
    j += 1;
    if !raw {
        // Byte string: same escape rules as a plain string.
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 2,
                '"' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(chars.len());
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    while j < chars.len() {
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(chars.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // World::run in a comment
            /* thread::spawn in /* a nested */ block */
            let s = "World::run(2, f)";
            let r = r#"thread::spawn"#;
            let b = b"Instant::now";
            real_ident();
        "##;
        assert_eq!(
            idents(src),
            vec!["let", "s", "let", "r", "let", "b", "real_ident"]
        );
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let l = lex(src);
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Char));
        assert!(idents(src).contains(&"str".to_string()));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/* x\ny */\nb\n\"s\nt\"\nc";
        let l = lex(src);
        let lines: Vec<(String, u32)> = l
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 4), ("c".into(), 7)]
        );
    }

    #[test]
    fn allow_directives_attach_to_their_line() {
        let src = "x();\n// lint: allow(collective-symmetry)\ny(); // lint: allow(no-raw-spawn, world-run-boundary)\n";
        let l = lex(src);
        assert!(l.allowed(2, "collective-symmetry"));
        assert!(l.allowed(3, "collective-symmetry"), "line below the allow");
        assert!(l.allowed(3, "no-raw-spawn"), "trailing comment");
        assert!(l.allowed(3, "world-run-boundary"));
        assert!(!l.allowed(1, "collective-symmetry"));
        assert!(!l.allowed(3, "timed-regions-only"));
        assert!(
            !l.allowed(4, "no-raw-spawn"),
            "a trailing allow covers only its own line"
        );
    }
}
