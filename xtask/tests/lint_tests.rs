//! Self-test for the rank-safety lint pass: a fixture tree under
//! `tests/fixtures/` seeds violation patterns for every rule (plus a
//! fully-suppressed file), and the real workspace must come back clean —
//! the same invocation CI runs as a required job.

use std::path::{Path, PathBuf};

use xtask::{lint_workspace, workspace_root};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Every seeded violation is reported with its rule name and exact
/// file:line, and nothing else fires — in particular, the allow-annotated
/// `allowed.rs` contributes zero findings.
#[test]
fn seeded_fixture_violations_are_reported_with_rule_and_location() {
    let findings = lint_workspace(&fixtures_root()).expect("fixture tree must be readable");
    let got: Vec<(String, u32, &str)> = findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule))
        .collect();
    let expected = vec![
        (
            "crates/fixture/src/post_deposit.rs".to_string(),
            5,
            "no-post-deposit-mutation",
        ),
        (
            "crates/fixture/src/post_deposit.rs".to_string(),
            12,
            "no-post-deposit-mutation",
        ),
        (
            "crates/fixture/src/raw_spawn.rs".to_string(),
            4,
            "no-raw-spawn",
        ),
        (
            "crates/fixture/src/symmetry.rs".to_string(),
            5,
            "collective-symmetry",
        ),
        (
            "crates/fixture/src/symmetry.rs".to_string(),
            7,
            "collective-symmetry",
        ),
        (
            "crates/fixture/src/symmetry.rs".to_string(),
            12,
            "collective-symmetry",
        ),
        (
            "crates/fixture/src/symmetry.rs".to_string(),
            20,
            "collective-symmetry",
        ),
        (
            "crates/fixture/src/symmetry.rs".to_string(),
            23,
            "collective-symmetry",
        ),
        (
            "crates/fixture/src/symmetry.rs".to_string(),
            30,
            "collective-symmetry",
        ),
        (
            "crates/fixture/src/timed.rs".to_string(),
            6,
            "timed-regions-only",
        ),
        (
            "crates/fixture/src/world_run.rs".to_string(),
            5,
            "world-run-boundary",
        ),
    ];
    assert_eq!(got, expected, "full findings: {findings:#?}");
}

/// Findings render as `file:line rule-name: message`, the format CI logs.
#[test]
fn findings_render_in_file_line_rule_format() {
    let findings = lint_workspace(&fixtures_root()).expect("fixture tree must be readable");
    let world_run = findings
        .iter()
        .find(|f| f.rule == "world-run-boundary")
        .expect("the world-run fixture must fire");
    let rendered = world_run.to_string();
    assert!(
        rendered.starts_with("crates/fixture/src/world_run.rs:5 world-run-boundary: "),
        "unexpected rendering: {rendered}"
    );
    assert!(
        rendered.contains("run_ranks"),
        "message should point at the fix"
    );
}

/// The real workspace carries no violations: every deliberate asymmetry is
/// annotated, and the boundary rules hold. This is the clean-run gate CI
/// enforces via `cargo run -p xtask -- lint`.
#[test]
fn real_workspace_is_lint_clean() {
    let findings = lint_workspace(&workspace_root()).expect("workspace must be readable");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean, found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
