//! Self-test for the static collective-schedule checker: a fixture tree
//! under `tests/fixtures/schedule/` seeds one file per defect class (plus
//! a negative fixture of the safe patterns), and the real workspace must
//! come back clean — the same invocation CI runs via
//! `cargo run -p xtask -- schedule`.

use std::path::{Path, PathBuf};

use xtask::schedule::{SCHEDULE_ASYMMETRY, SCHEDULE_UNPAIRED_EXCHANGE};
use xtask::{analyze_workspace, workspace_root};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/schedule")
}

/// Every seeded defect is reported with its rule name and exact
/// file:line, and nothing else fires — in particular the safe-pattern
/// file (allreduce-decided branch, balanced rotation) contributes zero.
#[test]
fn seeded_schedule_defects_are_reported_with_rule_and_location() {
    let analysis = analyze_workspace(&fixtures_root()).expect("fixture tree must be readable");
    let got: Vec<(String, u32, &str)> = analysis
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule))
        .collect();
    let expected = vec![
        // The divergent condition enters through the call site; the
        // report lands on the branch inside the helper.
        (
            "crates/bfs/src/crossfn.rs".to_string(),
            5,
            SCHEDULE_ASYMMETRY,
        ),
        (
            "crates/bfs/src/diverge.rs".to_string(),
            5,
            SCHEDULE_ASYMMETRY,
        ),
        // A start with no wait on any path: reported at the function.
        (
            "crates/bfs/src/unpaired.rs".to_string(),
            4,
            SCHEDULE_UNPAIRED_EXCHANGE,
        ),
        // Each iteration nets +1 in-flight: reported at the loop.
        (
            "crates/bfs/src/unpaired.rs".to_string(),
            9,
            SCHEDULE_UNPAIRED_EXCHANGE,
        ),
        // Rank-local data decides the branch; no replication proof.
        (
            "crates/bfs/src/unsafe_branch.rs".to_string(),
            7,
            SCHEDULE_ASYMMETRY,
        ),
    ];
    assert_eq!(got, expected, "full findings: {:#?}", analysis.findings);
}

/// The real workspace carries no schedule findings: every config-decided
/// branch is annotated with its replication proof, and the exchange
/// rotations balance. This is the clean-run gate CI enforces.
#[test]
fn real_workspace_is_schedule_clean() {
    let analysis = analyze_workspace(&workspace_root()).expect("workspace must be readable");
    assert!(
        analysis.findings.is_empty(),
        "the workspace must be schedule-clean, found:\n{}",
        analysis
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Every driver in `crates/bfs` surfaces as an entry point with a
/// non-empty schedule — the machine-readable report the conformance test
/// consumes.
#[test]
fn real_workspace_extracts_the_driver_entry_points() {
    let analysis = analyze_workspace(&workspace_root()).expect("workspace must be readable");
    for name in [
        "bfs1d_run",
        "bfs2d_run",
        "distributed_pagerank_run",
        "distributed_sssp_run",
        "distributed_components_run",
    ] {
        let e = analysis
            .entry(name)
            .unwrap_or_else(|| panic!("driver {name} must surface as an entry point"));
        let mut rendered = String::new();
        xtask::schedule::render(&e.schedule, 0, &mut rendered);
        assert!(
            !rendered.trim().is_empty() && rendered.trim() != "(empty)",
            "driver {name} must extract a non-empty schedule"
        );
        assert!(
            e.file.starts_with("crates/bfs/src/"),
            "driver {name} must live in crates/bfs, got {}",
            e.file
        );
    }
}
