// Fixture: seeded `no-post-deposit-mutation` violations (lines 5, 12).

pub fn scribbles_on_received(comm: &Comm, bufs: Vec<WireBuf>) {
    let recv = comm.alltoallv_wire(bufs);
    recv[0].bytes_mut()[0] = 0xFF;
}

pub fn scribbles_through_alias(comm: &Comm, bufs: Vec<WireBuf>) {
    let pending = comm.ialltoallv_wire(bufs);
    let recv = pending.wait();
    let mut theirs = recv[1].clone();
    theirs.bytes_mut().push(0);
}

// Negative case: a payload is freely mutable while it is being built —
// every legitimate mutation (codec output, verifier checksum, fault flip)
// happens before the deposit seals it. The lint must not fire here.
pub fn builds_before_send(comm: &Comm, mut buf: WireBuf) {
    buf.bytes_mut().push(7);
    let _ = comm.alltoallv_wire(vec![buf]);
}
