// Fixture: seeded `collective-symmetry` violations (lines 5, 7, 12, 20, 23).

pub fn lopsided(comm: &Comm, x: u64) {
    if comm.rank() == 0 {
        comm.barrier();
    } else {
        comm.allreduce(x, |a, b| a + b);
    }
    match comm.rank() {
        0 => {}
        _ => {
            comm.gatherv(&[x], 0);
        }
    }
}

pub fn lopsided_pipeline(comm: &Comm, bufs: Vec<WireBuf>) {
    let pending = comm.ialltoallv_wire(bufs);
    if comm.rank() == 0 {
        let _ = pending.wait();
    }
    if comm.rank() == 1 {
        let _ = comm.ialltoallv_wire(bufs).wait();
    }
}
