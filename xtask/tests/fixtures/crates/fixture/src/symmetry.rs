// Fixture: seeded `collective-symmetry` violations (lines 5, 7, 12).

pub fn lopsided(comm: &Comm, x: u64) {
    if comm.rank() == 0 {
        comm.barrier();
    } else {
        comm.allreduce(x, |a, b| a + b);
    }
    match comm.rank() {
        0 => {}
        _ => {
            comm.gatherv(&[x], 0);
        }
    }
}
