// Fixture: seeded `collective-symmetry` violations (lines 5, 7, 12, 20, 23, 30).

pub fn lopsided(comm: &Comm, x: u64) {
    if comm.rank() == 0 {
        comm.barrier();
    } else {
        comm.allreduce(x, |a, b| a + b);
    }
    match comm.rank() {
        0 => {}
        _ => {
            comm.gatherv(&[x], 0);
        }
    }
}

pub fn lopsided_pipeline(comm: &Comm, bufs: Vec<WireBuf>) {
    let pending = comm.ialltoallv_wire(bufs);
    if comm.rank() == 0 {
        let _ = pending.wait();
    }
    if comm.rank() == 1 {
        let _ = comm.ialltoallv_wire(bufs).wait();
    }
}

// The hybrid BFS's bitmap broadcast: rank-guarding it hangs the group.
pub fn lopsided_bitmap_broadcast(comm: &Comm, frontier_bits: WireBuf) {
    if comm.rank() == 0 {
        let _ = comm.allgatherv_wire(frontier_bits);
    }
}

// Negative case: a *data*-dependent guard is symmetric when the condition
// is a pure function of allreduced global counts — exactly how the hybrid
// driver picks its per-level direction. The lint must not fire here.
pub fn direction_switched_broadcast(comm: &Comm, bottom_up: bool, frontier_bits: WireBuf) {
    if bottom_up {
        let _ = comm.allgatherv_wire(frontier_bits);
    } else {
        let _ = comm.alltoallv_wire(vec![frontier_bits]);
    }
}
