// Fixture: seeded `no-raw-spawn` violation (line 4).

pub fn helper() -> i32 {
    let h = std::thread::spawn(|| 1 + 1);
    h.join().expect("fixture thread")
}
