// Fixture: seeded `timed-regions-only` violation (line 6).

pub fn drive(cfg: RunConfig) {
    let _ = run_ranks(cfg, |ctx| {
        let comm = ctx.comm();
        let t0 = std::time::Instant::now();
        comm.barrier();
        t0.elapsed()
    });
}
