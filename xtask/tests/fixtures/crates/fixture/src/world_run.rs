// Fixture: seeded `world-run-boundary` violation (line 5).
use dmbfs_comm::World;

pub fn launch() -> Vec<usize> {
    World::run(4, |comm| comm.rank())
}
