// Fixture: deliberate asymmetry, fully suppressed via allow-directives —
// the lint must report zero findings for this file.

pub fn intentional(comm: &Comm, y: &mut u64) {
    if comm.rank() == 0 {
        // lint: allow(collective-symmetry)
        comm.barrier();
        comm.broadcast(0, y); // lint: allow(collective-symmetry)
    }
}
