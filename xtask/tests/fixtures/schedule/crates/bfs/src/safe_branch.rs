//! Negative fixture: the safe patterns. A branch decided by a prior
//! allreduce (the `[u64; 3]` hybrid idiom), and the double-buffered
//! start/wait rotation. Zero findings expected.

pub fn allreduce_decided(comm: &Comm, mine: u64, bufs: Vec<WireBuf>) {
    let total = comm.allreduce(mine, |a, b| a + b);
    if total > 4 {
        comm.allgatherv_wire(bufs.pop().unwrap());
    } else {
        comm.alltoallv_wire(bufs);
    }
}

pub fn rotation(comm: &Comm, k: usize) {
    let mut pending = comm.ialltoallv_wire(encode(0));
    for c in 1..k {
        let wire = pending.wait();
        pending = comm.ialltoallv_wire(encode(c));
    }
    let wire = pending.wait();
}
