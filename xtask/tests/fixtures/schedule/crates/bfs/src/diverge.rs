//! Seeded defect: a rank-divergent branch whose arms emit different
//! collective schedules — the silent-deadlock shape.

pub fn diverging_arms(comm: &Comm, bufs: Vec<Vec<u64>>) {
    if comm.rank() == 0 {
        comm.alltoallv(bufs);
    } else {
        comm.barrier();
    }
}
