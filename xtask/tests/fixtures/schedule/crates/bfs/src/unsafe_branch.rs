//! Seeded defect: a data-dependent branch whose deciding value is
//! rank-local (derived from `.rank()`), not a replicated result —
//! nothing proves every rank takes the same arm.

pub fn data_dependent(comm: &Comm, local: &Local1d) {
    let mine = local.frontier_len(comm.rank());
    if mine > 4 {
        comm.alltoallv_wire(encode(mine));
    } else {
        comm.allgatherv(vec![mine]);
    }
}
