//! Seeded defect: cross-function asymmetry. The helper looks innocent in
//! isolation — the divergence flows in through its call site.

fn guarded_barrier(comm: &Comm, flag: bool) {
    if flag {
        comm.barrier();
    }
}

pub fn caller(comm: &Comm) {
    guarded_barrier(comm, comm.rank() == 0);
}
