//! Seeded defect: nonblocking-exchange pairing violations — a start that
//! is never completed, and a loop that starts more than it waits for.

pub fn leaked_start(comm: &Comm, bufs: Vec<WireBuf>) {
    let pending = comm.ialltoallv_wire(bufs);
}

pub fn loop_imbalance(comm: &Comm, k: usize) {
    for c in 0..k {
        let pending = comm.ialltoallv_wire(encode(c));
    }
}
