//! Workspace-level property-based tests (proptest): randomized instances,
//! partitions, and sources; the distributed algorithms must always agree
//! with the serial oracle and pass validation.

use dmbfs::graph::gen::{erdos_renyi, rmat, RmatConfig};
use dmbfs::prelude::*;
use proptest::prelude::*;

/// Builds an arbitrary prepared graph from a strategy seed.
fn arbitrary_graph(scale: u32, seed: u64, relabel: bool) -> CsrGraph {
    let mut el = rmat(&RmatConfig::graph500(scale, seed));
    el.canonicalize_undirected();
    let el = if relabel {
        RandomPermutation::new(el.num_vertices, seed ^ 0xA5).apply_edge_list(&el)
    } else {
        el
    };
    CsrGraph::from_edge_list(&el)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bfs1d_always_matches_serial(
        seed in 0u64..1000,
        scale in 6u32..9,
        p in 1usize..9,
        relabel in any::<bool>(),
    ) {
        let g = arbitrary_graph(scale, seed, relabel);
        let source = sample_sources(&g, 1, seed)[0];
        let expected = serial_bfs(&g, source);
        let out = bfs1d(&g, source, &Bfs1dConfig::flat(p));
        prop_assert_eq!(out.levels(), expected.levels());
        validate_bfs(&g, source, &out.parents, out.levels()).unwrap();
    }

    #[test]
    fn bfs2d_always_matches_serial(
        seed in 0u64..1000,
        scale in 6u32..9,
        pr in 1usize..4,
        pc in 1usize..4,
    ) {
        let g = arbitrary_graph(scale, seed, true);
        let source = sample_sources(&g, 1, seed)[0];
        let expected = serial_bfs(&g, source);
        let out = bfs2d(&g, source, &Bfs2dConfig::flat(Grid2D::new(pr, pc)));
        prop_assert_eq!(out.levels(), expected.levels());
        validate_bfs(&g, source, &out.parents, out.levels()).unwrap();
    }

    #[test]
    fn hybrid_variants_always_match_serial(
        seed in 0u64..500,
        threads in 2usize..4,
    ) {
        let g = arbitrary_graph(7, seed, true);
        let source = sample_sources(&g, 1, seed)[0];
        let expected = serial_bfs(&g, source);
        let d1 = bfs1d(&g, source, &Bfs1dConfig::hybrid(3, threads));
        prop_assert_eq!(d1.levels(), expected.levels());
        let d2 = bfs2d(&g, source, &Bfs2dConfig::hybrid(Grid2D::new(2, 2), threads));
        prop_assert_eq!(d2.levels(), expected.levels());
    }

    #[test]
    fn erdos_renyi_traversals_validate(
        seed in 0u64..1000,
        n in 20u64..200,
        density in 1u64..8,
    ) {
        let mut el = erdos_renyi(n, n * density, seed);
        el.canonicalize_undirected();
        let g = CsrGraph::from_edge_list(&el);
        let source = sample_sources(&g, 1, seed)[0];
        let out = bfs1d(&g, source, &Bfs1dConfig::flat(3));
        validate_bfs(&g, source, &out.parents, out.levels()).unwrap();
        let expected = serial_bfs(&g, source);
        prop_assert_eq!(out.levels(), expected.levels());
    }

    #[test]
    fn reached_set_is_exactly_the_source_component(
        seed in 0u64..1000,
    ) {
        use dmbfs::graph::components::connected_components;
        let g = arbitrary_graph(7, seed, false);
        let source = sample_sources(&g, 1, seed)[0];
        let out = shared_bfs(&g, source);
        let cc = connected_components(&g);
        let comp = cc.labels[source as usize];
        for v in 0..g.num_vertices() as usize {
            let reached = out.levels()[v] >= 0;
            prop_assert_eq!(reached, cc.labels[v] == comp, "vertex {}", v);
        }
    }

    #[test]
    fn permutation_preserves_bfs_structure(
        seed in 0u64..1000,
    ) {
        // Relabeling must permute levels, not change them.
        let mut el = rmat(&RmatConfig::graph500(7, seed));
        el.canonicalize_undirected();
        let g = CsrGraph::from_edge_list(&el);
        let perm = RandomPermutation::new(el.num_vertices, seed);
        let gp = CsrGraph::from_edge_list(&perm.apply_edge_list(&el));
        let source = sample_sources(&g, 1, seed)[0];
        let a = serial_bfs(&g, source);
        let b = serial_bfs(&gp, perm.apply(source));
        for v in 0..g.num_vertices() {
            prop_assert_eq!(
                a.levels()[v as usize],
                b.levels()[perm.apply(v) as usize]
            );
        }
    }
}
