//! End-to-end Graph 500 pipeline integration: generation → preparation →
//! distributed traversal → validation → TEPS accounting, plus the
//! instrumentation contracts the benchmark harness relies on.

use dmbfs::bfs::one_d::bfs1d_run;
use dmbfs::bfs::teps::{benchmark_bfs, teps_edges};
use dmbfs::bfs::two_d::bfs2d_run;
use dmbfs::comm::Pattern;
use dmbfs::graph::components::connected_components;
use dmbfs::graph::gen::{rmat, RmatConfig};
use dmbfs::model::{replay_comm_time, MachineProfile};
use dmbfs::prelude::*;

fn prepared_graph(scale: u32, seed: u64) -> CsrGraph {
    let mut el = rmat(&RmatConfig::graph500(scale, seed));
    el.canonicalize_undirected();
    let perm = RandomPermutation::new(el.num_vertices, seed);
    CsrGraph::from_edge_list(&perm.apply_edge_list(&el))
}

#[test]
fn full_benchmark_protocol_runs_and_validates() {
    let g = prepared_graph(10, 8);
    let report = benchmark_bfs(&g, 8, 3, |s| {
        let out = bfs1d(&g, s, &Bfs1dConfig::flat(4));
        validate_bfs(&g, s, &out.parents, out.levels()).expect("validation");
        (out, None)
    });
    assert_eq!(report.runs.len(), 8);
    assert!(report.teps > 0.0);
    // Sources must be distinct and all in the giant component.
    let cc = connected_components(&g);
    let giant = cc.largest();
    let mut sources: Vec<u64> = report.runs.iter().map(|r| r.source).collect();
    sources.sort_unstable();
    sources.dedup();
    assert_eq!(sources.len(), 8);
    for s in sources {
        assert_eq!(cc.labels[s as usize], giant);
    }
}

#[test]
fn teps_edges_equal_for_all_variants() {
    // TEPS accounting must be independent of which algorithm traversed.
    let g = prepared_graph(9, 4);
    let s = sample_sources(&g, 1, 1)[0];
    let a = bfs1d(&g, s, &Bfs1dConfig::flat(3));
    let b = bfs2d(&g, s, &Bfs2dConfig::flat(Grid2D::new(2, 2)));
    let c = serial_bfs(&g, s);
    assert_eq!(teps_edges(&g, &a), teps_edges(&g, &c));
    assert_eq!(teps_edges(&g, &b), teps_edges(&g, &c));
}

#[test]
fn one_d_stats_expose_the_alltoall_structure() {
    let g = prepared_graph(9, 5);
    let s = sample_sources(&g, 1, 2)[0];
    let run = bfs1d_run(&g, s, &Bfs1dConfig::flat(4));
    for stats in &run.per_rank_stats {
        // Algorithm 2: one Alltoallv + one Allreduce per level, nothing else
        // inside the timed region except the trailing barrier.
        let a2a = stats
            .events
            .iter()
            .filter(|e| e.pattern == Pattern::Alltoallv)
            .count();
        let ar = stats
            .events
            .iter()
            .filter(|e| e.pattern == Pattern::Allreduce)
            .count();
        assert_eq!(a2a as u32, run.num_levels);
        assert_eq!(ar as u32, run.num_levels);
        for e in &stats.events {
            assert_eq!(e.group_size, 4);
        }
    }
}

#[test]
fn two_d_stats_expose_the_expand_fold_structure() {
    let g = prepared_graph(9, 6);
    let s = sample_sources(&g, 1, 3)[0];
    let grid = Grid2D::new(2, 3);
    let run = bfs2d_run(&g, s, &Bfs2dConfig::flat(grid));
    for stats in &run.per_rank_stats {
        for e in &stats.events {
            match e.pattern {
                // Expand runs on the column communicator (pr = 2 ranks).
                Pattern::Allgatherv => assert_eq!(e.group_size, 2),
                // Fold runs on the row communicator (pc = 3 ranks).
                Pattern::Alltoallv => {
                    // Rectangular grids route the transpose through a world
                    // alltoallv; fold uses the row communicator.
                    assert!(e.group_size == 3 || e.group_size == 6);
                }
                _ => {}
            }
        }
    }
}

#[test]
fn two_d_communicates_less_than_one_d_per_rank() {
    // The headline structural claim, measured exactly: at equal rank
    // counts, the 2D algorithm's per-rank communication volume is smaller.
    let g = prepared_graph(12, 7);
    let s = sample_sources(&g, 1, 4)[0];
    let p = 16;
    let run1 = bfs1d_run(&g, s, &Bfs1dConfig::flat(p));
    let run2 = bfs2d_run(&g, s, &Bfs2dConfig::flat(Grid2D::new(4, 4)));
    let max1 = run1
        .per_rank_stats
        .iter()
        .map(|s| s.bytes_out())
        .max()
        .unwrap();
    let max2 = run2
        .per_rank_stats
        .iter()
        .map(|s| s.bytes_out())
        .max()
        .unwrap();
    assert!(
        max2 < max1,
        "2D per-rank bytes ({max2}) should be below 1D ({max1})"
    );
}

#[test]
fn replayed_comm_time_orders_algorithms_like_volumes() {
    let g = prepared_graph(11, 9);
    let s = sample_sources(&g, 1, 5)[0];
    let profile = MachineProfile::hopper();
    let run1 = bfs1d_run(&g, s, &Bfs1dConfig::flat(16));
    let run2 = bfs2d_run(&g, s, &Bfs2dConfig::flat(Grid2D::new(4, 4)));
    let ev1: Vec<_> = run1
        .per_rank_stats
        .iter()
        .map(|s| s.events.clone())
        .collect();
    let ev2: Vec<_> = run2
        .per_rank_stats
        .iter()
        .map(|s| s.events.clone())
        .collect();
    let t1 = replay_comm_time(&profile, &ev1, 1);
    let t2 = replay_comm_time(&profile, &ev2, 1);
    assert!(
        t2 < t1,
        "modeled 2D comm ({t2:.6}s) should beat 1D ({t1:.6}s) on Hopper"
    );
}

#[test]
fn deterministic_generation_makes_runs_reproducible() {
    let a = prepared_graph(9, 42);
    let b = prepared_graph(9, 42);
    assert_eq!(a, b);
    let s = sample_sources(&a, 1, 6)[0];
    assert_eq!(
        bfs2d(&a, s, &Bfs2dConfig::flat(Grid2D::new(2, 2))).parents,
        bfs2d(&b, s, &Bfs2dConfig::flat(Grid2D::new(2, 2))).parents,
    );
}
