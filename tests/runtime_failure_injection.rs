//! Failure-injection and stress tests for the message-passing runtime —
//! the substrate every distributed result in this repository rests on.

use dmbfs::comm::{Comm, World};
use std::panic::catch_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn panic_in_one_rank_fails_the_world_without_deadlock() {
    for panicking_rank in [0usize, 3, 7] {
        let result = catch_unwind(|| {
            World::run(8, |comm| {
                if comm.rank() == panicking_rank {
                    panic!("injected failure at rank {panicking_rank}");
                }
                // Everyone else blocks in collectives; poison must free them.
                for _ in 0..10 {
                    comm.barrier();
                    comm.allreduce(1u64, |a, b| a + b);
                }
            })
        });
        assert!(
            result.is_err(),
            "rank {panicking_rank} panic must propagate"
        );
    }
}

#[test]
fn panic_inside_subcommunicator_propagates() {
    let result = catch_unwind(|| {
        World::run(6, |comm| {
            let sub = comm.split((comm.rank() % 2) as u64, comm.rank() as u64);
            if comm.rank() == 5 {
                panic!("boom in the odd group");
            }
            // Both groups keep running collectives; the even group never
            // observes rank 5 directly but must still unblock via poison.
            for _ in 0..10 {
                sub.allreduce(1u64, |a, b| a + b);
            }
        })
    });
    assert!(result.is_err());
}

#[test]
fn worlds_are_isolated_after_a_failure() {
    let _ = catch_unwind(|| {
        World::run(4, |comm| {
            if comm.rank() == 1 {
                panic!("first world dies");
            }
            comm.barrier();
        })
    });
    // A fresh world must be unaffected.
    let sums = World::run(4, |comm| comm.allreduce(comm.rank() as u64, |a, b| a + b));
    assert_eq!(sums, vec![6; 4]);
}

#[test]
fn heavy_collective_traffic_is_lossless() {
    // Stress: 32 ranks, 50 rounds of uneven alltoallv; every payload must
    // arrive intact and in the right mailbox.
    let rounds = 50u64;
    let p = 32usize;
    let results = World::run(p, |comm| {
        let me = comm.rank() as u64;
        let mut checksum = 0u64;
        for round in 0..rounds {
            let bufs: Vec<Vec<u64>> = (0..p as u64)
                .map(|dst| {
                    let len = ((me + dst + round) % 7) as usize;
                    vec![me * 1_000_000 + dst * 1_000 + round; len]
                })
                .collect();
            let recv = comm.alltoallv(bufs);
            for (src, buf) in recv.iter().enumerate() {
                let expected_len = ((src as u64 + me + round) % 7) as usize;
                assert_eq!(buf.len(), expected_len, "round {round} src {src}");
                for &x in buf {
                    assert_eq!(x, src as u64 * 1_000_000 + me * 1_000 + round);
                    checksum = checksum.wrapping_add(x);
                }
            }
        }
        checksum
    });
    assert_eq!(results.len(), p);
}

#[test]
fn mixed_collectives_in_lockstep_are_consistent() {
    let counter = AtomicUsize::new(0);
    World::run(9, |comm| {
        let grid = 3usize;
        let (i, j) = (comm.rank() / grid, comm.rank() % grid);
        let row = comm.split(i as u64, j as u64);
        let col = comm.split((grid + j) as u64, i as u64);
        for _ in 0..20 {
            let row_sum = row.allreduce(comm.rank() as u64, |a, b| a + b);
            let col_sum = col.allreduce(comm.rank() as u64, |a, b| a + b);
            // Row i holds {3i, 3i+1, 3i+2}; column j holds {j, j+3, j+6}.
            assert_eq!(row_sum, (9 * i + 3) as u64);
            assert_eq!(col_sum, (3 * j + 9) as u64);
            let t = comm.sendrecv(j * grid + i, vec![comm.rank() as u32]);
            assert_eq!(t, vec![(j * grid + i) as u32]);
            counter.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), 9 * 20);
}

#[test]
fn single_rank_comm_supports_whole_api() {
    let comm = Comm::single();
    comm.barrier();
    assert_eq!(comm.allreduce(5u64, |a, b| a + b), 5);
    assert_eq!(comm.allgather(7u8), vec![7]);
    assert_eq!(comm.broadcast(0, Some(9i32)), 9);
    assert_eq!(comm.gather(0, 4u16), Some(vec![4]));
    assert_eq!(comm.sendrecv(0, vec![1u64, 2]), vec![1, 2]);
    let sub = comm.split(0, 0);
    assert_eq!(sub.size(), 1);
}

#[test]
fn stats_survive_heavy_splitting() {
    let all = World::run(8, |comm| {
        let sub = comm.split((comm.rank() / 2) as u64, comm.rank() as u64);
        let subsub = sub.split(0, sub.rank() as u64);
        subsub.allreduce(1u64, |a, b| a + b);
        let stats = subsub.take_stats();
        (subsub.size(), stats.num_calls())
    });
    for (size, calls) in all {
        assert_eq!(size, 2);
        assert_eq!(calls, 1);
    }
}
