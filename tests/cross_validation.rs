//! Cross-validation matrix: every BFS implementation must produce the same
//! level assignment as the serial reference (Algorithm 1) on every graph
//! family, and every spanning tree must pass Graph 500 validation.
//!
//! This is the repository's strongest correctness statement: the 1D and 2D
//! distributed algorithms (flat and hybrid), the shared-memory variants,
//! and both reimplemented baselines all traverse identically.

use dmbfs::bfs::baseline::{pbgl_like_bfs, reference_mpi_bfs};
use dmbfs::bfs::shared::{shared_bfs_with, DiscoveryMode, SharedBfsConfig};
use dmbfs::graph::gen;
use dmbfs::matrix::MergeKernel;
use dmbfs::prelude::*;

/// The instance zoo: name, prepared graph.
fn zoo() -> Vec<(&'static str, CsrGraph)> {
    let mut instances = Vec::new();

    let mut rmat = gen::rmat(&gen::RmatConfig::graph500(9, 31));
    rmat.canonicalize_undirected();
    let rmat = RandomPermutation::new(rmat.num_vertices, 5).apply_edge_list(&rmat);
    instances.push(("rmat-9", CsrGraph::from_edge_list(&rmat)));

    let mut er = gen::erdos_renyi(700, 4200, 3);
    er.canonicalize_undirected();
    instances.push(("erdos-renyi", CsrGraph::from_edge_list(&er)));

    instances.push(("path-97", CsrGraph::from_edge_list(&gen::path(97))));
    instances.push(("ring-64", CsrGraph::from_edge_list(&gen::ring(64))));
    instances.push(("tree-7", CsrGraph::from_edge_list(&gen::binary_tree(7))));
    instances.push(("grid-11x7", CsrGraph::from_edge_list(&gen::grid2d(11, 7))));
    instances.push(("torus-6x8", CsrGraph::from_edge_list(&gen::torus2d(6, 8))));

    let mut crawl = gen::webcrawl(&gen::WebCrawlConfig {
        num_communities: 8,
        community_size: 40,
        intra_degree: 6,
        bridges: 2,
        seed: 9,
    });
    crawl.canonicalize_undirected();
    instances.push(("webcrawl", CsrGraph::from_edge_list(&crawl)));

    // Disconnected: two R-MAT halves with disjoint vertex ranges.
    let mut a = gen::rmat(&gen::RmatConfig::graph500(7, 1));
    a.canonicalize_undirected();
    let offset = a.num_vertices;
    let mut b = gen::rmat(&gen::RmatConfig::graph500(7, 2));
    b.canonicalize_undirected();
    let mut edges = a.edges.clone();
    edges.extend(b.edges.iter().map(|&(u, v)| (u + offset, v + offset)));
    instances.push((
        "disconnected",
        CsrGraph::from_edge_list(&EdgeList::new(offset * 2, edges)),
    ));

    instances
}

fn check(name: &str, g: &CsrGraph, source: u64, got: &BfsOutput, expected: &BfsOutput) {
    assert_eq!(
        got.levels(),
        expected.levels(),
        "{name}: levels disagree from source {source}"
    );
    validate_bfs(g, source, &got.parents, got.levels())
        .unwrap_or_else(|e| panic!("{name}: validation failed: {e}"));
}

#[test]
fn one_d_flat_matches_serial_everywhere() {
    for (name, g) in zoo() {
        let source = sample_sources(&g, 1, 1)[0];
        let expected = serial_bfs(&g, source);
        for p in [2usize, 5, 8] {
            let out = bfs1d(&g, source, &Bfs1dConfig::flat(p));
            check(name, &g, source, &out, &expected);
        }
    }
}

#[test]
fn one_d_hybrid_matches_serial_everywhere() {
    for (name, g) in zoo() {
        let source = sample_sources(&g, 1, 2)[0];
        let expected = serial_bfs(&g, source);
        let out = bfs1d(&g, source, &Bfs1dConfig::hybrid(4, 2));
        check(name, &g, source, &out, &expected);
    }
}

#[test]
fn two_d_flat_matches_serial_everywhere() {
    for (name, g) in zoo() {
        let source = sample_sources(&g, 1, 3)[0];
        let expected = serial_bfs(&g, source);
        for grid in [Grid2D::new(2, 2), Grid2D::new(3, 2), Grid2D::new(2, 4)] {
            let out = bfs2d(&g, source, &Bfs2dConfig::flat(grid));
            check(name, &g, source, &out, &expected);
        }
    }
}

#[test]
fn two_d_hybrid_matches_serial_everywhere() {
    for (name, g) in zoo() {
        let source = sample_sources(&g, 1, 4)[0];
        let expected = serial_bfs(&g, source);
        let out = bfs2d(&g, source, &Bfs2dConfig::hybrid(Grid2D::new(2, 2), 2));
        check(name, &g, source, &out, &expected);
    }
}

#[test]
fn two_d_kernels_and_distributions_match_serial() {
    for (name, g) in zoo() {
        let source = sample_sources(&g, 1, 5)[0];
        let expected = serial_bfs(&g, source);
        for kernel in [MergeKernel::Spa, MergeKernel::Heap, MergeKernel::Auto] {
            let cfg = Bfs2dConfig {
                kernel,
                ..Bfs2dConfig::flat(Grid2D::new(3, 3))
            };
            check(name, &g, source, &bfs2d(&g, source, &cfg), &expected);
        }
        let diag = Bfs2dConfig {
            distribution: VectorDistribution::Diagonal,
            ..Bfs2dConfig::flat(Grid2D::new(3, 3))
        };
        check(name, &g, source, &bfs2d(&g, source, &diag), &expected);
    }
}

#[test]
fn shared_memory_modes_match_serial_everywhere() {
    for (name, g) in zoo() {
        let source = sample_sources(&g, 1, 6)[0];
        let expected = serial_bfs(&g, source);
        for mode in [
            DiscoveryMode::Cas,
            DiscoveryMode::BenignRace,
            DiscoveryMode::LockedStack,
        ] {
            let out = shared_bfs_with(&g, source, &SharedBfsConfig { mode });
            check(name, &g, source, &out, &expected);
        }
    }
}

#[test]
fn baselines_match_serial_everywhere() {
    for (name, g) in zoo() {
        let source = sample_sources(&g, 1, 7)[0];
        let expected = serial_bfs(&g, source);
        let r = reference_mpi_bfs(&g, source, 4);
        check(name, &g, source, &r.output, &expected);
        let p = pbgl_like_bfs(&g, source, 4);
        check(name, &g, source, &p.output, &expected);
    }
}

#[test]
fn exotic_2d_configuration_combinations_match_serial() {
    // Combinations not covered elsewhere: hybrid × diagonal distribution,
    // hybrid × ring expand, hybrid on rectangular grids, heap kernel with
    // diagonal distribution.
    use dmbfs::matrix::MergeKernel;
    let (_, g) = zoo().remove(0);
    let source = sample_sources(&g, 1, 13)[0];
    let expected = serial_bfs(&g, source);

    let combos = [
        Bfs2dConfig {
            distribution: VectorDistribution::Diagonal,
            ..Bfs2dConfig::hybrid(Grid2D::new(3, 3), 2)
        },
        Bfs2dConfig {
            expand: ExpandAlgorithm::Ring,
            ..Bfs2dConfig::hybrid(Grid2D::new(2, 2), 2)
        },
        Bfs2dConfig::hybrid(Grid2D::new(2, 4), 2),
        Bfs2dConfig {
            distribution: VectorDistribution::Diagonal,
            kernel: MergeKernel::Heap,
            ..Bfs2dConfig::flat(Grid2D::new(4, 4))
        },
        Bfs2dConfig {
            expand: ExpandAlgorithm::Doubling,
            kernel: MergeKernel::Spa,
            ..Bfs2dConfig::hybrid(Grid2D::new(4, 2), 3)
        },
    ];
    for (k, cfg) in combos.iter().enumerate() {
        let out = bfs2d(&g, source, cfg);
        assert_eq!(out.levels(), expected.levels(), "combo {k}: {cfg:?}");
        validate_bfs(&g, source, &out.parents, out.levels()).unwrap();
    }
}

#[test]
fn directed_graphs_traverse_identically_across_variants() {
    // Raw (un-symmetrized) R-MAT is a directed graph; §6 notes the
    // approaches "can work with directed graphs as well".
    use dmbfs::bfs::validate::validate_bfs_directed;
    let mut el = gen::rmat(&gen::RmatConfig::graph500(9, 77));
    el.remove_self_loops();
    el.dedup();
    let g = CsrGraph::from_edge_list(&el);
    // Pick a source with outgoing edges.
    let source = (0..g.num_vertices()).find(|&v| g.degree(v) > 0).unwrap();
    let expected = serial_bfs(&g, source);
    for p in [2usize, 4] {
        let out = bfs1d(&g, source, &Bfs1dConfig::flat(p));
        assert_eq!(out.levels(), expected.levels(), "1D p={p}");
        validate_bfs_directed(&g, source, &out.parents, out.levels()).unwrap();
    }
    for grid in [Grid2D::new(2, 2), Grid2D::new(2, 3)] {
        let out = bfs2d(&g, source, &Bfs2dConfig::flat(grid));
        assert_eq!(out.levels(), expected.levels(), "2D {grid:?}");
        validate_bfs_directed(&g, source, &out.parents, out.levels()).unwrap();
    }
    let shared = dmbfs::bfs::shared::shared_bfs(&g, source);
    assert_eq!(shared.levels(), expected.levels());
}

#[test]
fn all_variants_agree_from_many_sources() {
    let (_, g) = zoo().remove(0);
    for &source in sample_sources(&g, 6, 99).iter() {
        let expected = serial_bfs(&g, source);
        let a = bfs1d(&g, source, &Bfs1dConfig::flat(4));
        let b = bfs2d(&g, source, &Bfs2dConfig::flat(Grid2D::new(2, 2)));
        let c = shared_bfs(&g, source);
        assert_eq!(a.levels(), expected.levels());
        assert_eq!(b.levels(), expected.levels());
        assert_eq!(c.levels(), expected.levels());
    }
}
